"""Shared domain state of the analysis service.

:class:`ServiceState` is the long-lived layer every request handler
dispatches into: loaded circuits with their timing graphs and delay
models stay resident across requests, and ONE process-wide
content-addressed :class:`~repro.dist.cache.ConvolutionCache` is
threaded through every analysis — entries are content-keyed, so a
family of sized variants of the same circuit shares most convolutions
and concurrent users warm each other's runs instead of recomputing
from cold.

Lock discipline (three levels, acquired strictly downward — no method
ever takes a higher-level lock while holding a lower one, so the
hierarchy is deadlock-free by construction):

1. ``ServiceState._lock`` (top) guards the *registries*: the session
   table, the resident-circuit table, and the latency metrics.  It is
   held only for dict probes/inserts and timestamp updates — never
   while kernel work runs.
2. ``_ResidentCircuit.lock`` (middle) serializes analyses that share
   one resident entry's mutable memos (the
   :class:`~repro.timing.delay_model.DelayModel` PDF cache and the
   per-instance ``DiscretePDF`` memos).  Distinct entries — different
   circuits, scales, or analysis configs — run fully concurrently.
   Sizing requests never take it: they load a fresh circuit copy per
   request (the sizer mutates gate widths) and share only the cache.
3. ``ConvolutionCache`` internal lock (bottom) makes every cache
   operation atomic; it is acquired inside the kernels, under any of
   the above.

Results are bitwise independent of request interleaving: cache hits
replay the exact bits a fresh computation would produce (the PR-3
contract), so a server-mediated analysis equals its local serial twin
no matter how many sessions run concurrently — the invariant the
concurrent-session suite and the ``service`` benchmark section pin.

Eviction policy: resident circuits idle beyond ``ttl_s`` (or beyond
``max_resident``, LRU-first) and sessions idle beyond ``session_ttl_s``
are dropped at request boundaries; when ``cache_budget_bytes`` is set,
the shared cache is trimmed LRU-first to the budget after every
request (:meth:`ConvolutionCache.evict_to_bytes`).

Snapshot lifecycle: when constructed with ``cache_file`` the state
warm-starts from the snapshot if it exists, and :meth:`flush` writes
the cache back through the atomic writer (tmp + ``os.replace``), so a
crash can never destroy the previous good snapshot.  The server wires
:meth:`flush` to a periodic timer, ``atexit``, and SIGTERM drain.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..core.brute_force_sizer import BruteForceStatisticalSizer
from ..core.deterministic_sizer import DeterministicSizer
from ..core.heuristic_sizer import HeuristicStatisticalSizer
from ..core.pruned_sizer import PrunedStatisticalSizer
from ..dist.cache import DEFAULT_CACHE_CAPACITY, ConvolutionCache
from ..dist.ops import OpCounter
from ..errors import OptimizationError, ServiceError
from ..exec.arena import live_arena_stats
from ..netlist.benchmarks import PAPER_SUITE, load
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from ..timing.ssta import run_ssta
from ..timing.sta import run_sta
from ..timing.yield_analysis import delay_at_yield, timing_yield, yield_curve
from .protocol import pdf_to_wire, sizing_result_to_wire

__all__ = ["ServiceState", "SIZERS", "OVERRIDABLE_CONFIG_FIELDS"]

#: Sizer verbs accepted by /optimize.
SIZERS = {
    "pruned": PrunedStatisticalSizer,
    "heuristic": HeuristicStatisticalSizer,
    "brute": BruteForceStatisticalSizer,
    "deterministic": DeterministicSizer,
}

#: AnalysisConfig fields a session or request may override.  ``cache``
#: is deliberately absent (the whole point of the service is the ONE
#: shared cache) and so is ``jobs`` (request concurrency comes from
#: server threads; nesting per-request worker pools would multiply
#: processes without adding cores).
OVERRIDABLE_CONFIG_FIELDS = (
    "dt", "tail_eps", "percentile", "sigma_fraction",
    "truncation_sigma", "delta_w", "backend", "level_batch",
)

#: Default percentile levels reported by /analyze (matches the golden
#: sink files).
DEFAULT_PERCENTILES = (0.5, 0.9, 0.99)

#: Latency samples kept per endpoint for the p50/p99 report.
_LATENCY_WINDOW = 8192


class _Session:
    """One client session: config overrides plus usage tallies."""

    __slots__ = (
        "session_id", "created", "last_used", "overrides",
        "requests", "kernel_hits", "kernel_requests",
    )

    def __init__(self, session_id: str, overrides: dict, now: float) -> None:
        self.session_id = session_id
        self.created = now
        self.last_used = now
        self.overrides = overrides
        self.requests = 0
        self.kernel_hits = 0
        self.kernel_requests = 0

    @property
    def hit_rate(self) -> float:
        if self.kernel_requests == 0:
            return 0.0
        return self.kernel_hits / self.kernel_requests

    def describe(self) -> dict:
        return {
            "requests": self.requests,
            "kernel_hits": self.kernel_hits,
            "kernel_requests": self.kernel_requests,
            "hit_rate": self.hit_rate,
            "idle_s": max(0.0, time.monotonic() - self.last_used),
            "overrides": dict(self.overrides),
        }


class _ResidentCircuit:
    """A loaded circuit with its timing graph and delay model.

    ``lock`` serializes analyses sharing this entry (level-2 of the
    lock discipline); the registry key already encodes every config
    field the delay model depends on, so one entry never serves two
    numerically different configurations.
    """

    __slots__ = ("key", "circuit", "graph", "model", "lock", "last_used")

    def __init__(self, key: tuple, circuit, graph, model, now: float) -> None:
        self.key = key
        self.circuit = circuit
        self.graph = graph
        self.model = model
        self.lock = threading.Lock()
        self.last_used = now


def _config_signature(config: AnalysisConfig) -> tuple:
    """Everything a resident delay model's numerics depend on (the
    cache and the execution plan are bitwise-transparent knobs)."""
    return tuple(
        getattr(config, f) for f in OVERRIDABLE_CONFIG_FIELDS
    )


class ServiceState:
    """Long-lived shared state behind the analysis server."""

    def __init__(
        self,
        *,
        config: AnalysisConfig = DEFAULT_CONFIG,
        cache=DEFAULT_CACHE_CAPACITY,
        cache_file=None,
        ttl_s: float = 3600.0,
        session_ttl_s: float = 3600.0,
        max_resident: int = 32,
        cache_budget_bytes: Optional[int] = None,
        seed_file=None,
        worker_id: Optional[int] = None,
        stats_sidecar=None,
    ) -> None:
        if max_resident < 1:
            raise ServiceError(
                f"max_resident must be >= 1, got {max_resident}"
            )
        if ttl_s <= 0 or session_ttl_s <= 0:
            raise ServiceError("TTLs must be positive")
        if cache_budget_bytes is not None and cache_budget_bytes < 0:
            raise ServiceError(
                f"cache budget must be >= 0, got {cache_budget_bytes}"
            )
        self.base_config = config.with_updates(cache=None, jobs=1)
        self.ttl_s = float(ttl_s)
        self.session_ttl_s = float(session_ttl_s)
        self.max_resident = int(max_resident)
        self.cache_budget_bytes = cache_budget_bytes
        self.cache_file = None
        self.loaded_entries = 0
        self.worker_id = worker_id
        self.stats_sidecar = (
            None if stats_sidecar is None else os.fspath(stats_sidecar)
        )
        if cache_file is not None:
            self.cache_file = os.fspath(cache_file)
        seed_file = None if seed_file is None else os.fspath(seed_file)
        # The ONE process-wide cache.  Warm-start from the snapshot
        # when one exists; its capacity knob still applies.
        # ``seed_file`` is the fallback warm start: a frontend worker
        # flushes to its *own* snapshot path but seeds from the shared
        # reconciled one on first boot, so every worker starts from
        # the union of its predecessors' caches.
        capacity = (
            cache.capacity
            if isinstance(cache, ConvolutionCache)
            else int(cache) if cache else DEFAULT_CACHE_CAPACITY
        )
        if self.cache_file is not None and _exists(self.cache_file):
            self.cache = ConvolutionCache.load(
                self.cache_file, capacity=capacity
            )
            self.loaded_entries = len(self.cache)
        elif seed_file is not None and _exists(seed_file):
            self.cache = ConvolutionCache.load(seed_file, capacity=capacity)
            self.loaded_entries = len(self.cache)
        elif isinstance(cache, ConvolutionCache):
            self.cache = cache
        else:
            self.cache = ConvolutionCache(capacity)
        self._lock = threading.Lock()
        self._sessions: Dict[str, _Session] = {}
        self._resident: Dict[tuple, _ResidentCircuit] = {}
        self._latencies: Dict[str, deque] = {}
        self._request_counts: Dict[str, int] = {}
        self._started = time.monotonic()
        self._flush_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Config + session resolution
    # ------------------------------------------------------------------
    def _resolve_config(
        self, session: Optional[_Session], overrides: Optional[dict]
    ) -> AnalysisConfig:
        """Base config + session overrides + request overrides, with
        the shared cache always attached."""
        merged: dict = {}
        if session is not None:
            merged.update(session.overrides)
        if overrides:
            for field in overrides:
                if field not in OVERRIDABLE_CONFIG_FIELDS:
                    raise ServiceError(
                        f"config field {field!r} is not overridable; "
                        f"allowed: {OVERRIDABLE_CONFIG_FIELDS}"
                    )
            merged.update(overrides)
        try:
            config = self.base_config.with_updates(**merged)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad config override: {exc}") from exc
        return config.with_updates(cache=self.cache)

    def _session(self, session_id: Optional[str]) -> Optional[_Session]:
        if session_id is None:
            return None
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise ServiceError(f"unknown session {session_id!r}")
            session.last_used = time.monotonic()
            session.requests += 1
            return session

    def open_session(self, overrides: Optional[dict] = None) -> str:
        overrides = dict(overrides or {})
        # Validate now so a bad session fails at open, not first use.
        self._resolve_config(None, overrides)
        session_id = uuid.uuid4().hex[:16]
        now = time.monotonic()
        with self._lock:
            self._sessions[session_id] = _Session(session_id, overrides, now)
        return session_id

    def close_session(self, session_id: str) -> dict:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return session.describe()

    def _tally_session(
        self, session: Optional[_Session], hits: int, requests: int
    ) -> None:
        if session is None:
            return
        with self._lock:
            session.kernel_hits += hits
            session.kernel_requests += requests

    # ------------------------------------------------------------------
    # Resident circuits + eviction
    # ------------------------------------------------------------------
    def _resident_entry(
        self, name: str, scale: float, config: AnalysisConfig
    ) -> _ResidentCircuit:
        key = (name, float(scale), _config_signature(config))
        now = time.monotonic()
        with self._lock:
            self._evict_expired_locked(now)
            entry = self._resident.get(key)
            if entry is not None:
                entry.last_used = now
                return entry
        # Build outside the registry lock — loading a circuit is real
        # work and must not stall unrelated requests.  A concurrent
        # builder of the same key may win the insert race below; both
        # entries are equivalent, so first-in wins and the loser's
        # build is discarded.
        circuit = _load_circuit(name, scale)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=config)
        entry = _ResidentCircuit(key, circuit, graph, model, now)
        with self._lock:
            existing = self._resident.get(key)
            if existing is not None:
                existing.last_used = time.monotonic()
                return existing
            # Make room LRU-first before inserting past the bound.
            while len(self._resident) >= self.max_resident:
                lru_key = min(
                    self._resident,
                    key=lambda k: self._resident[k].last_used,
                )
                del self._resident[lru_key]
            self._resident[key] = entry
            return entry

    def _evict_expired_locked(self, now: float) -> None:
        """Drop idle sessions and resident circuits past their TTLs
        (caller holds ``self._lock``)."""
        dead = [
            sid for sid, s in self._sessions.items()
            if now - s.last_used > self.session_ttl_s
        ]
        for sid in dead:
            del self._sessions[sid]
        stale = [
            key for key, e in self._resident.items()
            if now - e.last_used > self.ttl_s
        ]
        for key in stale:
            del self._resident[key]

    def _enforce_cache_budget(self) -> None:
        if self.cache_budget_bytes is not None:
            self.cache.evict_to_bytes(self.cache_budget_bytes)

    # ------------------------------------------------------------------
    # Request handlers (the server routes dispatch here)
    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: str,
        *,
        scale: float = 1.0,
        session_id: Optional[str] = None,
        config_overrides: Optional[dict] = None,
        percentiles: Iterable[float] = DEFAULT_PERCENTILES,
    ) -> dict:
        """One SSTA + STA pass over a resident circuit.

        Returns a wire-ready dict whose ``sink`` field round-trips the
        sink distribution bitwise (see :mod:`repro.service.protocol`).
        """
        session = self._session(session_id)
        config = self._resolve_config(session, config_overrides)
        entry = self._resident_entry(circuit, scale, config)
        counter = OpCounter()
        with entry.lock:
            ssta = run_ssta(entry.graph, entry.model,
                            config=config, counter=counter)
            sta = run_sta(entry.graph, entry.model)
        sink = ssta.sink_pdf
        self._tally_session(session, counter.cache_hits,
                            counter.total_requests)
        self._enforce_cache_budget()
        return {
            "circuit": circuit,
            "scale": float(scale),
            "gates": entry.circuit.n_gates,
            "sta_delay": sta.circuit_delay,
            "mean": sink.mean(),
            "std": sink.std(),
            "percentiles": [
                [float(p), sink.percentile(float(p))]
                for p in percentiles
            ],
            "sink": pdf_to_wire(sink),
            "kernel": {
                "convolutions": counter.convolutions,
                "max_ops": counter.max_ops,
                "cache_hits": counter.cache_hits,
                "requests": counter.total_requests,
            },
        }

    def optimize(
        self,
        circuit: str,
        *,
        iterations: int = 25,
        scale: float = 1.0,
        sizer: str = "pruned",
        session_id: Optional[str] = None,
        config_overrides: Optional[dict] = None,
    ) -> dict:
        """One sizing run on a **fresh** circuit copy (sizers mutate
        gate widths; only the convolution cache is shared)."""
        session = self._session(session_id)
        config = self._resolve_config(session, config_overrides)
        try:
            sizer_cls = SIZERS[sizer]
        except KeyError:
            raise ServiceError(
                f"unknown sizer {sizer!r}; one of {sorted(SIZERS)}"
            ) from None
        if sizer == "deterministic":
            # The deterministic baseline never touches the statistical
            # kernels; drop the cache so its run matches the local CLI
            # exactly.
            config = config.with_updates(cache=None)
        fresh = _load_circuit(circuit, scale)
        try:
            runner = sizer_cls(
                fresh, config=config, max_iterations=int(iterations)
            )
        except (TypeError, ValueError, OptimizationError) as exc:
            # Construction-time failures are bad *requests* (e.g.
            # iterations < 1); failures inside run() stay domain
            # errors.
            raise ServiceError(f"bad optimize request: {exc}") from exc
        result = runner.run()
        hits = result.cache_hits
        requests = hits + sum(
            s.stats.convolutions + s.stats.max_ops for s in result.steps
        )
        self._tally_session(session, hits, requests)
        self._enforce_cache_budget()
        return {
            "circuit": circuit,
            "scale": float(scale),
            "sizer": sizer,
            "cache_hit_rate": result.cache_hit_rate,
            "result": sizing_result_to_wire(result),
        }

    def yield_query(
        self,
        circuit: str,
        *,
        scale: float = 1.0,
        target: Optional[float] = None,
        n_points: int = 12,
        session_id: Optional[str] = None,
        config_overrides: Optional[dict] = None,
    ) -> dict:
        """Timing-yield queries on the resident sink distribution."""
        session = self._session(session_id)
        config = self._resolve_config(session, config_overrides)
        entry = self._resident_entry(circuit, scale, config)
        counter = OpCounter()
        with entry.lock:
            sink = run_ssta(entry.graph, entry.model,
                            config=config, counter=counter).sink_pdf
        self._tally_session(session, counter.cache_hits,
                            counter.total_requests)
        self._enforce_cache_budget()
        targets, yields = yield_curve(sink, n_points=int(n_points))
        out = {
            "circuit": circuit,
            "scale": float(scale),
            "delay_at_yield": [
                [y, delay_at_yield(sink, y)]
                for y in (0.50, 0.90, 0.95, 0.99)
            ],
            "yield_curve": [
                [float(t), float(y)] for t, y in zip(targets, yields)
            ],
            "sink": pdf_to_wire(sink),
        }
        if target is not None:
            out["target"] = float(target)
            out["yield_at_target"] = timing_yield(sink, float(target))
        return out

    # ------------------------------------------------------------------
    # Introspection + lifecycle
    # ------------------------------------------------------------------
    def record_latency(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            bucket = self._latencies.get(endpoint)
            if bucket is None:
                bucket = self._latencies[endpoint] = deque(
                    maxlen=_LATENCY_WINDOW
                )
            bucket.append(seconds)
            self._request_counts[endpoint] = (
                self._request_counts.get(endpoint, 0) + 1
            )

    @staticmethod
    def _quantile(sorted_values: List[float], q: float) -> float:
        """Nearest-rank quantile of a non-empty sorted sample."""
        idx = min(
            len(sorted_values) - 1,
            max(0, int(round(q * (len(sorted_values) - 1)))),
        )
        return sorted_values[idx]

    def stats(self) -> dict:
        """Aggregate service statistics (the /stats payload)."""
        hits, misses, evictions = self.cache.stats.snapshot()
        with self._lock:
            sessions = {
                sid: s.describe() for sid, s in self._sessions.items()
            }
            resident = [
                {
                    "circuit": key[0],
                    "scale": key[1],
                    "idle_s": max(0.0, time.monotonic() - e.last_used),
                }
                for key, e in self._resident.items()
            ]
            latency = {}
            for endpoint, bucket in self._latencies.items():
                values = sorted(bucket)
                latency[endpoint] = {
                    "count": self._request_counts.get(endpoint, 0),
                    "p50_ms": self._quantile(values, 0.50) * 1e3,
                    "p99_ms": self._quantile(values, 0.99) * 1e3,
                }
        requests = hits + misses
        return {
            "uptime_s": time.monotonic() - self._started,
            # Which process answered: the multi-worker front load-
            # balances one port across N workers, so stats are per
            # worker; the parent reconciles sidecars for the union.
            "worker": {"id": self.worker_id, "pid": os.getpid()},
            "cache": {
                "entries": len(self.cache),
                "capacity": self.cache.capacity,
                "approx_bytes": self.cache.approx_bytes,
                "budget_bytes": self.cache_budget_bytes,
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "requests": requests,
                "hit_rate": hits / requests if requests else 0.0,
                "loaded_from_snapshot": self.loaded_entries,
                "snapshot_file": self.cache_file,
            },
            "sessions": sessions,
            "resident_circuits": resident,
            "requests": latency,
            # Shared-memory operand arenas held by the executor
            # registry (jobs > 1 analyses).  Surfaced so operators can
            # watch segment/byte residency the same way they watch the
            # cache budget; all zeros in a jobs=1 deployment.
            "arena": live_arena_stats(),
        }

    def flush(self) -> int:
        """Write the cache snapshot (atomic replace), returning the
        number of entries written; 0 when no ``cache_file`` is set.
        Serialized through one flush lock so the periodic flusher,
        SIGTERM drain, and atexit hook never interleave on one path
        (and each save's temp file is additionally unique per writer,
        so even an out-of-band ``cache.save`` cannot corrupt it).
        When a ``stats_sidecar`` is configured, the cache tallies ride
        along as a small JSON the frontend parent folds together via
        ``CacheStats.merge``."""
        if self.cache_file is None:
            return 0
        with self._flush_lock:
            saved = self.cache.save(self.cache_file)
            if self.stats_sidecar is not None:
                hits, misses, evictions = self.cache.stats.snapshot()
                payload = {
                    "worker_id": self.worker_id,
                    "pid": os.getpid(),
                    "entries": len(self.cache),
                    "hits": hits,
                    "misses": misses,
                    "evictions": evictions,
                }
                tmp = f"{self.stats_sidecar}.tmp.{os.getpid()}"
                try:
                    with open(tmp, "w") as fh:
                        json.dump(payload, fh)
                    os.replace(tmp, self.stats_sidecar)
                except OSError:  # pragma: no cover - disk full etc.
                    pass
            return saved


def _exists(path: str) -> bool:
    return os.path.exists(path)


def _load_circuit(name: str, scale: float):
    known = PAPER_SUITE + ["c17"]
    if name not in known:
        raise ServiceError(
            f"unknown circuit {name!r}; available: {known}"
        )
    try:
        return load(name, scale=float(scale))
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"bad circuit request: {exc}") from exc
