"""Wire codecs for the analysis service — JSON-safe, bitwise-faithful.

The service's core invariant is that a server-mediated analysis
returns sink statistics **bitwise identical** to the same run executed
locally.  Two properties of the encoding carry that invariant over
JSON-over-HTTP:

* **Floats survive exactly.**  Python's ``json`` module serializes a
  float with ``repr``, the shortest string that round-trips to the
  same IEEE-754 double, and parses it back with correctly-rounded
  ``float()`` — so every scalar statistic (percentiles, objectives,
  sensitivities) crosses the wire bit for bit.
* **Mass vectors ship as raw bytes.**  A :class:`DiscretePDF` is
  encoded as its defining triple ``(dt, offset, masses)`` with the
  float64 mass vector base64-encoded little-endian, and decoded
  through the same memo-stripped ``__setstate__`` path the parallel
  IPC layer uses — no renormalization, no re-validation arithmetic,
  so the decoded distribution is the encoded one, bit for bit, and
  every derived query (``percentile``, ``mean``, ``cdf_at``) computes
  the identical value on either side of the wire.

Result objects round-trip as plain dicts mirroring their dataclasses:
:func:`sizing_result_to_wire` / :func:`sizing_result_from_wire`
reconstruct a genuine :class:`~repro.core.sizer_base.SizingResult`
(steps, per-iteration stats, initial widths and all) so client code
can keep consuming the library's result API unchanged.
"""

from __future__ import annotations

import base64
import sys
from typing import List

import numpy as np

from ..core.sizer_base import IterationStats, SizingResult, SizingStep
from ..dist.pdf import DiscretePDF
from ..errors import ServiceError

__all__ = [
    "pdf_to_wire",
    "pdf_from_wire",
    "sizing_result_to_wire",
    "sizing_result_from_wire",
    "overload_body",
    "parse_retry_after",
]

#: Wire format version, checked by the client against /health.
PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Overload rejection (503) body
# ----------------------------------------------------------------------
# A full queue is answered straight from the accept loop with 503 +
# ``Retry-After``.  The body mirrors the header's hint so clients
# behind header-stripping proxies still see it; ``"overloaded": true``
# is the machine-readable marker (the error text may evolve).

def overload_body(retry_after_s: float) -> dict:
    """The JSON body of a 503 admission rejection."""
    return {
        "error": "service overloaded: admission queue is full",
        "overloaded": True,
        "retry_after_s": float(retry_after_s),
    }


def parse_retry_after(header_value, body: dict) -> float | None:
    """Extract the retry hint from a 503's ``Retry-After`` header
    (delta-seconds form) falling back to the body's ``retry_after_s``;
    None when neither parses."""
    if header_value is not None:
        try:
            return max(0.0, float(header_value))
        except (TypeError, ValueError):
            pass
    value = body.get("retry_after_s") if isinstance(body, dict) else None
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        return None


def pdf_to_wire(pdf: DiscretePDF) -> dict:
    """Encode a distribution as its defining ``(dt, offset, masses)``
    triple with the mass bytes base64'd (little-endian float64)."""
    masses = np.ascontiguousarray(pdf.masses, dtype=np.float64)
    if sys.byteorder != "little":  # pragma: no cover - BE hosts only
        masses = masses.astype("<f8")
    return {
        "dt": pdf.dt,
        "offset": pdf.offset,
        "masses_b64": base64.b64encode(masses.tobytes()).decode("ascii"),
    }


def pdf_from_wire(payload: dict) -> DiscretePDF:
    """Decode :func:`pdf_to_wire` output bitwise.

    Reconstruction rides ``DiscretePDF.__setstate__`` — the pickle/IPC
    path that ships the triple verbatim — so no normalization
    arithmetic can shift a bit between encode and decode.
    """
    try:
        dt = float(payload["dt"])
        offset = int(payload["offset"])
        raw = base64.b64decode(payload["masses_b64"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed PDF payload: {exc}") from exc
    if len(raw) == 0 or len(raw) % 8:
        raise ServiceError(
            f"malformed PDF payload: {len(raw)} mass bytes"
        )
    masses = np.frombuffer(raw, dtype="<f8")
    if sys.byteorder != "little":  # pragma: no cover - BE hosts only
        masses = masses.astype(np.float64)
    masses = masses.copy()  # own the buffer before freezing it
    pdf = object.__new__(DiscretePDF)
    pdf.__setstate__((dt, offset, masses))
    return pdf


# ----------------------------------------------------------------------
# SizingResult round trip
# ----------------------------------------------------------------------

_STATS_FIELDS = (
    "wall_time_s", "candidates", "pruned", "finished_fronts",
    "nodes_computed", "convolutions", "max_ops", "cache_hits",
)


def _step_to_wire(step: SizingStep) -> dict:
    return {
        "iteration": step.iteration,
        "gate": step.gate,
        "sensitivity": step.sensitivity,
        "objective_before": step.objective_before,
        "objective_after": step.objective_after,
        "total_size": step.total_size,
        "extra_gates": list(step.extra_gates),
        "stats": {f: getattr(step.stats, f) for f in _STATS_FIELDS},
    }


def _step_from_wire(payload: dict) -> SizingStep:
    stats = IterationStats(**{
        f: payload["stats"][f] for f in _STATS_FIELDS
    })
    return SizingStep(
        iteration=int(payload["iteration"]),
        gate=payload["gate"],
        sensitivity=payload["sensitivity"],
        objective_before=payload["objective_before"],
        objective_after=payload["objective_after"],
        total_size=payload["total_size"],
        stats=stats,
        extra_gates=tuple(payload["extra_gates"]),
    )


def sizing_result_to_wire(result: SizingResult) -> dict:
    """Encode a :class:`SizingResult` as a JSON-safe dict (floats
    round-trip exactly; see the module docstring)."""
    return {
        "optimizer": result.optimizer,
        "circuit_name": result.circuit_name,
        "objective_name": result.objective_name,
        "delta_w": result.delta_w,
        "initial_objective": result.initial_objective,
        "final_objective": result.final_objective,
        "initial_size": result.initial_size,
        "final_size": result.final_size,
        "initial_widths": dict(result.initial_widths),
        "steps": [_step_to_wire(s) for s in result.steps],
        "stop_reason": result.stop_reason,
        "total_time_s": result.total_time_s,
    }


def sizing_result_from_wire(payload: dict) -> SizingResult:
    """Reconstruct the genuine result object from the wire dict."""
    try:
        steps: List[SizingStep] = [
            _step_from_wire(s) for s in payload["steps"]
        ]
        return SizingResult(
            optimizer=payload["optimizer"],
            circuit_name=payload["circuit_name"],
            objective_name=payload["objective_name"],
            delta_w=payload["delta_w"],
            initial_objective=payload["initial_objective"],
            final_objective=payload["final_objective"],
            initial_size=payload["initial_size"],
            final_size=payload["final_size"],
            initial_widths=dict(payload["initial_widths"]),
            steps=steps,
            stop_reason=payload["stop_reason"],
            total_time_s=payload["total_time_s"],
        )
    except (KeyError, TypeError) as exc:
        raise ServiceError(
            f"malformed sizing-result payload: {exc}"
        ) from exc
