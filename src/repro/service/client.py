"""Stdlib HTTP client for the analysis service.

:class:`ServiceClient` wraps :mod:`urllib.request` — no third-party
dependency — and re-materializes real library objects from the wire:
``analyze``/``yield_query`` hand back the sink as a genuine
:class:`~repro.dist.pdf.DiscretePDF` (decoded bitwise, see
:mod:`repro.service.protocol`) and ``optimize`` returns a genuine
:class:`~repro.core.sizer_base.SizingResult`, so callers keep using
the same result APIs whether an analysis ran locally or server-side.

Transport and HTTP-level failures surface as
:class:`~repro.errors.ServiceError` carrying the server's error
message when one was sent.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.sizer_base import SizingResult
from ..dist.pdf import DiscretePDF
from ..errors import ServiceError
from .protocol import PROTOCOL_VERSION, pdf_from_wire, sizing_result_from_wire

__all__ = ["ServiceClient", "AnalyzeReply", "YieldReply", "OptimizeReply"]


@dataclass
class AnalyzeReply:
    """An /analyze response with the sink decoded back to a PDF."""

    circuit: str
    scale: float
    gates: int
    sta_delay: float
    mean: float
    std: float
    percentiles: List[Tuple[float, float]]
    sink: DiscretePDF
    kernel: dict = field(default_factory=dict)
    raw: dict = field(default_factory=dict, repr=False)


@dataclass
class YieldReply:
    """A /yield response with the sink decoded back to a PDF."""

    circuit: str
    scale: float
    delay_at_yield: List[Tuple[float, float]]
    yield_curve: List[Tuple[float, float]]
    sink: DiscretePDF
    yield_at_target: Optional[float] = None
    raw: dict = field(default_factory=dict, repr=False)


@dataclass
class OptimizeReply:
    """An /optimize response with a reconstructed SizingResult."""

    circuit: str
    scale: float
    sizer: str
    cache_hit_rate: float
    result: SizingResult
    raw: dict = field(default_factory=dict, repr=False)


class ServiceClient:
    """A connection to one analysis server, optionally one session.

    ``open_session`` binds config overrides server-side; subsequent
    requests from this client carry the session id automatically.
    Usable as a context manager — closes the session on exit.
    """

    def __init__(self, url: str, *, timeout_s: float = 300.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.session_id: Optional[str] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        body = None
        headers = {}
        if method == "POST":
            body = json.dumps(payload or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                reply = json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read()).get("error", str(exc))
            except Exception:
                detail = str(exc)
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"service sent a non-JSON reply to {path}"
            ) from exc
        if not isinstance(reply, dict):
            raise ServiceError(f"service sent a non-object reply to {path}")
        return reply

    def _with_session(self, payload: dict) -> dict:
        if self.session_id is not None and "session" not in payload:
            payload["session"] = self.session_id
        return payload

    # ------------------------------------------------------------------
    # Sessions + lifecycle
    # ------------------------------------------------------------------
    def health(self) -> dict:
        reply = self._request("GET", "/health")
        proto = reply.get("protocol")
        if proto != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol mismatch: server speaks {proto}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        return reply

    def open_session(self, config: Optional[dict] = None) -> str:
        reply = self._request("POST", "/session", {"config": config or {}})
        self.session_id = reply["session"]
        return self.session_id

    def close_session(self) -> Optional[dict]:
        if self.session_id is None:
            return None
        reply = self._request(
            "POST", "/session/close", {"session": self.session_id}
        )
        self.session_id = None
        return reply.get("summary")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.close_session()
        except ServiceError:
            pass

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def flush(self) -> dict:
        return self._request("POST", "/flush")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: str,
        *,
        scale: float = 1.0,
        config: Optional[dict] = None,
        percentiles=None,
    ) -> AnalyzeReply:
        payload = self._with_session({
            "circuit": circuit,
            "scale": scale,
            "config": config,
        })
        if percentiles is not None:
            payload["percentiles"] = [float(p) for p in percentiles]
        reply = self._request("POST", "/analyze", payload)
        return AnalyzeReply(
            circuit=reply["circuit"],
            scale=reply["scale"],
            gates=reply["gates"],
            sta_delay=reply["sta_delay"],
            mean=reply["mean"],
            std=reply["std"],
            percentiles=[(p, v) for p, v in reply["percentiles"]],
            sink=pdf_from_wire(reply["sink"]),
            kernel=reply.get("kernel", {}),
            raw=reply,
        )

    def optimize(
        self,
        circuit: str,
        *,
        iterations: int = 25,
        scale: float = 1.0,
        sizer: str = "pruned",
        config: Optional[dict] = None,
    ) -> OptimizeReply:
        reply = self._request("POST", "/optimize", self._with_session({
            "circuit": circuit,
            "iterations": iterations,
            "scale": scale,
            "sizer": sizer,
            "config": config,
        }))
        return OptimizeReply(
            circuit=reply["circuit"],
            scale=reply["scale"],
            sizer=reply["sizer"],
            cache_hit_rate=reply["cache_hit_rate"],
            result=sizing_result_from_wire(reply["result"]),
            raw=reply,
        )

    def yield_query(
        self,
        circuit: str,
        *,
        scale: float = 1.0,
        target: Optional[float] = None,
        n_points: int = 12,
        config: Optional[dict] = None,
    ) -> YieldReply:
        reply = self._request("POST", "/yield", self._with_session({
            "circuit": circuit,
            "scale": scale,
            "target": target,
            "n_points": n_points,
            "config": config,
        }))
        return YieldReply(
            circuit=reply["circuit"],
            scale=reply["scale"],
            delay_at_yield=[(y, d) for y, d in reply["delay_at_yield"]],
            yield_curve=[(t, y) for t, y in reply["yield_curve"]],
            sink=pdf_from_wire(reply["sink"]),
            yield_at_target=reply.get("yield_at_target"),
            raw=reply,
        )
