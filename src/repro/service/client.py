"""Stdlib HTTP client for the analysis service.

:class:`ServiceClient` wraps :mod:`urllib.request` — no third-party
dependency — and re-materializes real library objects from the wire:
``analyze``/``yield_query`` hand back the sink as a genuine
:class:`~repro.dist.pdf.DiscretePDF` (decoded bitwise, see
:mod:`repro.service.protocol`) and ``optimize`` returns a genuine
:class:`~repro.core.sizer_base.SizingResult`, so callers keep using
the same result APIs whether an analysis ran locally or server-side.

Failure taxonomy (the part that makes the client overload-correct):

* ``4xx/422/500`` responses are **domain failures** — the server
  looked at the request and refused it.  They surface as
  :class:`~repro.errors.ServiceError` with the server's message and
  are never retried (retrying a bad request yields the same refusal).
* ``503`` + ``Retry-After`` is an **admission rejection** — the
  bounded queue was full and the request was turned away *before
  executing*.  It surfaces as
  :class:`~repro.errors.ServiceOverloadedError` and is retried for
  every endpoint, including non-idempotent ``/optimize``: rejection
  is pre-execution by construction, so a retry can never double-run.
* Connection refused/reset, timeouts, and truncated responses are
  **transport failures** — :class:`~repro.errors.ServiceTransportError`.
  The client cannot know whether the request executed, so these are
  retried only for idempotent requests (GET endpoints, ``/analyze``,
  ``/yield``, ``/flush``) and never for ``/optimize`` or session
  mutations.

Retries back off exponentially from ``backoff_base_s``, honor the
server's ``Retry-After`` hint when one was sent, add jitter so a
rejected herd does not reconverge in lockstep, and are capped by both
``max_retries`` and the ``total_deadline_s`` wall-clock budget.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.sizer_base import SizingResult
from ..dist.pdf import DiscretePDF
from ..errors import (
    ServiceError,
    ServiceOverloadedError,
    ServiceTransportError,
)
from .protocol import (
    PROTOCOL_VERSION,
    parse_retry_after,
    pdf_from_wire,
    sizing_result_from_wire,
)

__all__ = ["ServiceClient", "AnalyzeReply", "YieldReply", "OptimizeReply"]


@dataclass
class AnalyzeReply:
    """An /analyze response with the sink decoded back to a PDF."""

    circuit: str
    scale: float
    gates: int
    sta_delay: float
    mean: float
    std: float
    percentiles: List[Tuple[float, float]]
    sink: DiscretePDF
    kernel: dict = field(default_factory=dict)
    raw: dict = field(default_factory=dict, repr=False)


@dataclass
class YieldReply:
    """A /yield response with the sink decoded back to a PDF."""

    circuit: str
    scale: float
    delay_at_yield: List[Tuple[float, float]]
    yield_curve: List[Tuple[float, float]]
    sink: DiscretePDF
    yield_at_target: Optional[float] = None
    raw: dict = field(default_factory=dict, repr=False)


@dataclass
class OptimizeReply:
    """An /optimize response with a reconstructed SizingResult."""

    circuit: str
    scale: float
    sizer: str
    cache_hit_rate: float
    result: SizingResult
    raw: dict = field(default_factory=dict, repr=False)


class ServiceClient:
    """A connection to one analysis server, optionally one session.

    ``open_session`` binds config overrides server-side; subsequent
    requests from this client carry the session id automatically.
    Usable as a context manager — closes the session on exit.

    ``max_retries`` bounds retry *attempts beyond the first try* for
    overload rejections and (idempotent-only) transport failures;
    ``total_deadline_s`` bounds the whole retry loop's wall clock.
    ``rng`` injects a seeded :class:`random.Random` for deterministic
    jitter in tests.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout_s: float = 300.0,
        max_retries: int = 3,
        backoff_base_s: float = 0.1,
        total_deadline_s: float = 120.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.total_deadline_s = float(total_deadline_s)
        self.session_id: Optional[str] = None
        self._rng = rng if rng is not None else random.Random()
        #: Retries performed over this client's lifetime (observable
        #: by tests and the CLI's verbose mode).
        self.retries_performed = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None) -> dict:
        body = None
        headers = {}
        if method == "POST":
            body = json.dumps(payload or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                reply = json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                detail_body = json.loads(exc.read())
            except Exception:
                detail_body = {}
            detail = (
                detail_body.get("error", str(exc))
                if isinstance(detail_body, dict) else str(exc)
            )
            if exc.code == 503:
                raise ServiceOverloadedError(
                    f"{method} {path} rejected (503): {detail}",
                    retry_after_s=parse_retry_after(
                        exc.headers.get("Retry-After"), detail_body
                    ),
                ) from exc
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceTransportError(
                f"cannot reach service at {self.url}: {exc.reason}"
            ) from exc
        except (ConnectionError, TimeoutError,
                http.client.HTTPException) as exc:
            # Resets/disconnects that escape urllib's URLError wrapping
            # (RemoteDisconnected, IncompleteRead mid-body, ...).
            raise ServiceTransportError(
                f"transport failure talking to {self.url}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"service sent a non-JSON reply to {path}"
            ) from exc
        if not isinstance(reply, dict):
            raise ServiceError(f"service sent a non-object reply to {path}")
        return reply

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None, *,
                 idempotent: Optional[bool] = None) -> dict:
        """One request with the retry loop around it.

        Overload rejections (503, pre-execution) are retryable for
        every endpoint; transport failures only when ``idempotent``
        (default: GET requests).  Plain :class:`ServiceError` — the
        server answered and said no — is never retried.
        """
        if idempotent is None:
            idempotent = method == "GET"
        deadline = time.monotonic() + self.total_deadline_s
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceOverloadedError as exc:
                failure = exc
                delay = exc.retry_after_s
            except ServiceTransportError as exc:
                if not idempotent:
                    raise
                failure = exc
                delay = None
            if attempt >= self.max_retries:
                raise failure
            if delay is None:
                delay = self.backoff_base_s * (2.0 ** attempt)
            # Jitter: spread a rejected herd over [delay, 1.5*delay)
            # so it does not reconverge on the queue in lockstep.
            delay += self._rng.uniform(0.0, 0.5 * delay)
            if time.monotonic() + delay > deadline:
                raise failure
            attempt += 1
            self.retries_performed += 1
            time.sleep(delay)

    def _with_session(self, payload: dict) -> dict:
        if self.session_id is not None and "session" not in payload:
            payload["session"] = self.session_id
        return payload

    # ------------------------------------------------------------------
    # Sessions + lifecycle
    # ------------------------------------------------------------------
    def health(self) -> dict:
        reply = self._request("GET", "/health")
        proto = reply.get("protocol")
        if proto != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol mismatch: server speaks {proto}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        return reply

    def open_session(self, config: Optional[dict] = None) -> str:
        # Not idempotent (each success creates a session): a 503 still
        # retries — rejection is pre-execution — but a transport error
        # might have opened a session whose id was lost; surface it.
        reply = self._request(
            "POST", "/session", {"config": config or {}}, idempotent=False
        )
        self.session_id = reply["session"]
        return self.session_id

    def close_session(self) -> Optional[dict]:
        if self.session_id is None:
            return None
        reply = self._request(
            "POST", "/session/close", {"session": self.session_id},
            idempotent=False,
        )
        self.session_id = None
        return reply.get("summary")

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.close_session()
        except ServiceError:
            pass

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def flush(self) -> dict:
        # Snapshot writes are idempotent (content-keyed entries,
        # atomic replace), so a flush lost in transport retries.
        return self._request("POST", "/flush", idempotent=True)

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown", idempotent=False)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: str,
        *,
        scale: float = 1.0,
        config: Optional[dict] = None,
        percentiles=None,
    ) -> AnalyzeReply:
        payload = self._with_session({
            "circuit": circuit,
            "scale": scale,
            "config": config,
        })
        if percentiles is not None:
            payload["percentiles"] = [float(p) for p in percentiles]
        # Read-only query: safe to retry across a worker restart.
        reply = self._request("POST", "/analyze", payload, idempotent=True)
        return AnalyzeReply(
            circuit=reply["circuit"],
            scale=reply["scale"],
            gates=reply["gates"],
            sta_delay=reply["sta_delay"],
            mean=reply["mean"],
            std=reply["std"],
            percentiles=[(p, v) for p, v in reply["percentiles"]],
            sink=pdf_from_wire(reply["sink"]),
            kernel=reply.get("kernel", {}),
            raw=reply,
        )

    def optimize(
        self,
        circuit: str,
        *,
        iterations: int = 25,
        scale: float = 1.0,
        sizer: str = "pruned",
        config: Optional[dict] = None,
    ) -> OptimizeReply:
        # NOT idempotent: an /optimize lost in transport may have run
        # to completion server-side.  Only pre-execution rejections
        # (503 + Retry-After) are retried — never blind resends.
        reply = self._request("POST", "/optimize", self._with_session({
            "circuit": circuit,
            "iterations": iterations,
            "scale": scale,
            "sizer": sizer,
            "config": config,
        }), idempotent=False)
        return OptimizeReply(
            circuit=reply["circuit"],
            scale=reply["scale"],
            sizer=reply["sizer"],
            cache_hit_rate=reply["cache_hit_rate"],
            result=sizing_result_from_wire(reply["result"]),
            raw=reply,
        )

    def yield_query(
        self,
        circuit: str,
        *,
        scale: float = 1.0,
        target: Optional[float] = None,
        n_points: int = 12,
        config: Optional[dict] = None,
    ) -> YieldReply:
        reply = self._request("POST", "/yield", self._with_session({
            "circuit": circuit,
            "scale": scale,
            "target": target,
            "n_points": n_points,
            "config": config,
        }), idempotent=True)
        return YieldReply(
            circuit=reply["circuit"],
            scale=reply["scale"],
            delay_at_yield=[(y, d) for y, d in reply["delay_at_yield"]],
            yield_curve=[(t, y) for t, y in reply["yield_curve"]],
            sink=pdf_from_wire(reply["sink"]),
            yield_at_target=reply.get("yield_at_target"),
            raw=reply,
        )
