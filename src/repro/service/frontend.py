"""Pre-fork multi-worker front for the analysis service.

One listening port, N worker **processes**: the front binds
``SO_REUSEPORT`` sockets — one per worker, all on the same address —
and lets the kernel balance incoming connections across them.  Each
worker is a complete single-process service (its own
:class:`~repro.service.state.ServiceState`, its own bounded-admission
:class:`~repro.service.server.AnalysisServer`), so a worker crash
takes out only its in-flight requests and the parent respawns it;
nothing is shared mutably between workers at request time.

What *is* shared is warm state, reconciled through the existing
snapshot machinery rather than through locks:

* **Snapshot reconciliation.**  Worker ``i`` flushes its cache to its
  own file ``{base}.w{i}`` (atomic per-writer temp + rename) but
  *seeds* from the shared ``{base}`` on first boot.  A parent-side
  reconciler periodically folds ``{base}`` plus every worker file back
  into ``{base}`` via :meth:`ConvolutionCache.merge_snapshots` — so a
  respawned (or newly added) worker warm-starts from the union of its
  predecessors' work.  Entries are content-keyed and hits replay
  bitwise, so merge order cannot change any answer, only cost.
* **Stats reconciliation.**  Each worker's flush writes a tiny JSON
  sidecar of its cache tallies; the parent folds them with
  :meth:`CacheStats.merge` into ``{base}.stats.json`` — the
  aggregate hit-rate the benchmark's ``service`` rows record.
* **Operand sharing.**  A worker configured with ``jobs > 1`` pushes
  its warm-started cache's operand vectors into the shared-memory
  operand arena (``preload_operands``), the same read-only publish the
  CLI warm path uses, so its executor pool references snapshot
  operands as index tuples instead of re-pickling them per worker.

The front changes *where* a request runs, never *what* it returns:
every admitted request executes the same serial code path a lone local
run would (the bitwise invariant pinned by the frontend suite).

``SO_REUSEPORT`` is Linux/BSD; :func:`reuseport_available` probes for
it and the CLI falls back to the single-process server elsewhere.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing as mp
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import (
    AnalysisConfig,
    DEFAULT_CONFIG,
    DEFAULT_SERVICE_DRAIN_TIMEOUT_S,
    DEFAULT_SERVICE_HANDLER_THREADS,
    DEFAULT_SERVICE_QUEUE_DEPTH,
    DEFAULT_SERVICE_RETRY_AFTER_S,
    DEFAULT_SERVICE_WORKERS,
)
from ..dist.cache import CacheStats, ConvolutionCache, DEFAULT_CACHE_CAPACITY
from ..errors import ServiceError

__all__ = [
    "ServiceFrontend",
    "WorkerSpec",
    "reuseport_available",
    "worker_cache_file",
    "worker_stats_sidecar",
    "merged_stats_file",
]

#: How often the parent folds worker snapshots back into the base.
DEFAULT_RECONCILE_INTERVAL_S = 30.0

#: Automatic respawns allowed per worker slot before the slot is
#: declared dead (a crash-looping worker must not melt the host).
DEFAULT_RESPAWN_LIMIT = 3


def worker_cache_file(base: str, index: int) -> str:
    """Worker ``index``'s private snapshot path beside the shared one."""
    return f"{base}.w{index}"


def worker_stats_sidecar(base: str, index: int) -> str:
    """Worker ``index``'s cache-tally sidecar path."""
    return f"{base}.stats.w{index}.json"


def merged_stats_file(base: str) -> str:
    """The parent's reconciled aggregate of all worker sidecars."""
    return f"{base}.stats.json"


def reuseport_available(host: str = "127.0.0.1") -> bool:
    """Probe whether two sockets can actually share one TCP port via
    ``SO_REUSEPORT`` (the constant existing is not enough — some
    kernels define it and refuse it)."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    first = second = None
    try:
        first = _bind_reuseport(host, 0, listen=False)
        port = first.getsockname()[1]
        second = _bind_reuseport(host, port, listen=False)
        return True
    except OSError:
        return False
    finally:
        for sock in (first, second):
            if sock is not None:
                sock.close()


def _bind_reuseport(host: str, port: int, *, listen: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except OSError:
        sock.close()
        raise
    return sock


@dataclass
class WorkerSpec:
    """Everything a worker process needs to run its service — plain
    picklable data, shipped through the ``spawn`` start method (no
    state object crosses the fork; each worker builds its own)."""

    config: AnalysisConfig = DEFAULT_CONFIG
    cache_capacity: int = DEFAULT_CACHE_CAPACITY
    #: The *shared* snapshot path; workers derive their private
    #: ``{base}.w{i}`` / sidecar paths from it.  None disables
    #: persistence and reconciliation both.
    cache_file: Optional[str] = None
    cache_budget_bytes: Optional[int] = None
    ttl_s: float = 3600.0
    session_ttl_s: float = 3600.0
    max_resident: int = 32
    handler_threads: int = DEFAULT_SERVICE_HANDLER_THREADS
    queue_depth: int = DEFAULT_SERVICE_QUEUE_DEPTH
    retry_after_s: float = DEFAULT_SERVICE_RETRY_AFTER_S
    drain_timeout_s: float = DEFAULT_SERVICE_DRAIN_TIMEOUT_S
    flush_interval_s: Optional[float] = 300.0
    quiet: bool = True

    def __post_init__(self) -> None:
        # The state cannot pickle a live cache across spawn; the spec
        # must carry the capacity knob only.
        if self.config.cache is not None:
            self.config = self.config.with_updates(cache=None)
        if self.cache_file is not None:
            self.cache_file = os.fspath(self.cache_file)


def _worker_main(index: int, host: str, port: int, spec: WorkerSpec,
                 ready_event=None) -> None:
    """One worker process: bind an SO_REUSEPORT sibling socket, build
    the full single-process service on it, serve until signalled.

    Runs as the child's main function under ``spawn``, so
    :func:`~repro.service.server.serve` installs its SIGTERM/SIGINT
    drain handlers normally — a terminated worker finishes admitted
    work, flushes its own snapshot + sidecar, and exits 0.
    """
    # Late imports keep the module importable (and the spec picklable)
    # without dragging the whole service stack into the parent before
    # it is needed.
    from ..exec import get_executor
    from .server import AnalysisServer, serve
    from .state import ServiceState

    sock = _bind_reuseport(host, port, listen=True)
    state = ServiceState(
        config=spec.config,
        cache=spec.cache_capacity,
        cache_file=(
            worker_cache_file(spec.cache_file, index)
            if spec.cache_file else None
        ),
        seed_file=spec.cache_file,
        stats_sidecar=(
            worker_stats_sidecar(spec.cache_file, index)
            if spec.cache_file else None
        ),
        worker_id=index,
        ttl_s=spec.ttl_s,
        session_ttl_s=spec.session_ttl_s,
        max_resident=spec.max_resident,
        cache_budget_bytes=spec.cache_budget_bytes,
    )
    if spec.config.jobs > 1 and len(state.cache):
        # Publish the warm-started snapshot's operand vectors into the
        # shared-memory arena now (read-only), so this worker's
        # executor pool references them as index tuples from the first
        # request instead of re-pickling them per pool worker.  Purely
        # transport: hit rates and results are unaffected.
        executor = get_executor(spec.config.jobs, spec.config.transport)
        preload = getattr(executor, "preload_operands", None)
        if preload is not None:
            preload(state.cache.content_arrays())
    server = AnalysisServer(
        (host, port),
        state,
        quiet=spec.quiet,
        handler_threads=spec.handler_threads,
        queue_depth=spec.queue_depth,
        retry_after_s=spec.retry_after_s,
        sock=sock,
    )

    def _ready(_server) -> None:
        if ready_event is not None:
            ready_event.set()

    serve(
        state,
        host,
        port,
        flush_interval_s=spec.flush_interval_s,
        quiet=spec.quiet,
        ready_callback=_ready,
        drain_timeout_s=spec.drain_timeout_s,
        server=server,
    )


class ServiceFrontend:
    """Parent of the pre-fork service: owns the port, the workers,
    and the snapshot reconciler.

    ``start()`` / ``stop()`` bracket the front for tests and
    embedders; ``run()`` is the blocking CLI entry (start, wait for
    SIGTERM/SIGINT, stop).  ``port=0`` picks a free port — the parent
    reserves it with its own non-listening ``SO_REUSEPORT`` bind, so
    the port survives even a moment with zero live workers.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = DEFAULT_SERVICE_WORKERS,
        reconcile_interval_s: float = DEFAULT_RECONCILE_INTERVAL_S,
        respawn_limit: int = DEFAULT_RESPAWN_LIMIT,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.host = host
        self.requested_port = int(port)
        self.port: Optional[int] = None
        self.workers = int(workers)
        self.reconcile_interval_s = float(reconcile_interval_s)
        self.respawn_limit = int(respawn_limit)
        self.respawns: Dict[int, int] = {i: 0 for i in range(self.workers)}
        self._ctx = mp.get_context("spawn")
        self._procs: List = [None] * self.workers
        self._ready: List = [None] * self.workers
        self._guard: Optional[socket.socket] = None
        self._stopping = threading.Event()
        self._shutdown_requested = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._reconciler: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        if self.port is None:
            raise ServiceError("frontend is not started")
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceFrontend":
        if self._started:
            raise ServiceError("frontend already started")
        if not reuseport_available(self.host):
            raise ServiceError(
                "SO_REUSEPORT is unavailable on this host; "
                "run the single-process server (--workers 1) instead"
            )
        # The guard socket is bound but never listens: it reserves the
        # port (and resolves port 0) without ever receiving a
        # connection — the kernel balances only across *listening*
        # REUSEPORT siblings, i.e. the workers.
        self._guard = _bind_reuseport(
            self.host, self.requested_port, listen=False
        )
        self.port = self._guard.getsockname()[1]
        self._started = True
        for i in range(self.workers):
            self._spawn(i)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="svc-front-monitor", daemon=True
        )
        self._monitor.start()
        if self.spec.cache_file is not None:
            self._reconciler = threading.Thread(
                target=self._reconcile_loop,
                name="svc-front-reconciler",
                daemon=True,
            )
            self._reconciler.start()
        # Orphaned worker processes outlive a crashed parent as load
        # with no supervisor; best-effort sweep on interpreter exit.
        atexit.register(self.stop)
        return self

    def _spawn(self, index: int) -> None:
        if self._stopping.is_set():
            return
        event = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self.host, self.port, self.spec, event),
            name=f"svc-worker-{index}",
            daemon=False,  # workers may own executor pools (children)
        )
        proc.start()
        self._procs[index] = proc
        self._ready[index] = event

    def wait_until_ready(self, timeout_s: float = 60.0) -> bool:
        """Block until every worker's server is bound and serving (its
        ready callback fired), or the deadline passes."""
        deadline = time.monotonic() + float(timeout_s)
        for event in list(self._ready):
            if event is None:
                return False
            if not event.wait(max(0.0, deadline - time.monotonic())):
                return False
        return True

    def live_workers(self) -> int:
        return sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )

    def stop(self, timeout_s: Optional[float] = None) -> bool:
        """SIGTERM every worker (graceful drain), join under a
        deadline, escalate to SIGKILL for stragglers, reconcile the
        snapshots one last time.  Returns True when every worker
        drained and exited cleanly within the deadline.  Idempotent.
        """
        if not self._started or self._stopped:
            return True
        self._stopping.set()
        # Park the monitor *before* terminating, so it cannot respawn
        # a worker into the shutdown.
        if self._monitor is not None:
            self._monitor.join(5.0)
        if timeout_s is None:
            # Workers drain admitted work before exiting; give them
            # the drain budget plus scheduling margin.
            timeout_s = self.spec.drain_timeout_s + 10.0
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()  # SIGTERM -> worker drain path
        deadline = time.monotonic() + float(timeout_s)
        clean = True
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - wedged worker
                clean = False
                proc.kill()
                proc.join(5.0)
            elif proc.exitcode not in (0, -signal.SIGTERM):
                clean = False
        self._stopped = True
        if self._reconciler is not None:
            self._reconciler.join(5.0)
        try:
            self.reconcile()
        except OSError:  # pragma: no cover - disk trouble at exit
            clean = False
        if self._guard is not None:
            self._guard.close()
            self._guard = None
        return clean

    def run(self) -> int:
        """Blocking CLI entry: start, supervise until SIGTERM/SIGINT
        (or until every worker slot is permanently dead), stop."""
        if not self._started:
            self.start()

        def _request_shutdown(signum, frame):  # pragma: no cover
            self._shutdown_requested.set()

        previous = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _request_shutdown)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        try:
            while not self._shutdown_requested.wait(0.25):
                if self.live_workers() == 0 and all(
                    self.respawns[i] >= self.respawn_limit
                    for i in range(self.workers)
                ):  # pragma: no cover - crash-loop exhaustion
                    self.stop()
                    return 1
        except KeyboardInterrupt:  # pragma: no cover - ^C race
            pass
        finally:
            for sig, old in previous.items():
                try:
                    signal.signal(sig, old)
                except ValueError:  # pragma: no cover
                    pass
        return 0 if self.stop() else 1

    # ------------------------------------------------------------------
    # Supervision + reconciliation
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping.wait(0.25):
            for i, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                if self._stopping.is_set():
                    break
                if self.respawns[i] >= self.respawn_limit:
                    continue  # slot exhausted; leave it down
                self.respawns[i] += 1
                self._spawn(i)

    def _reconcile_loop(self) -> None:
        while not self._stopping.wait(self.reconcile_interval_s):
            try:
                self.reconcile()
            except OSError:  # pragma: no cover - transient disk issue
                pass

    def reconcile(self) -> dict:
        """Fold worker snapshots + stat sidecars into the shared base.

        Merge order puts the base first and workers after, so a
        worker's fresher LRU position wins; content-keyed entries make
        the result order-insensitive in *value* — reconciliation can
        change hit rates, never answers.  Returns a summary dict (the
        ``service.reconcile`` row of the benchmark).
        """
        base = self.spec.cache_file
        if base is None:
            return {"entries": 0, "workers": 0}
        paths = [base] + [
            worker_cache_file(base, i) for i in range(self.workers)
        ]
        entries = ConvolutionCache.merge_snapshots(
            [p for p in paths if os.path.exists(p)],
            base,
            capacity=self.spec.cache_capacity,
        )
        total = CacheStats()
        per_worker = []
        for i in range(self.workers):
            sidecar = worker_stats_sidecar(base, i)
            try:
                with open(sidecar) as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                continue
            total.merge(CacheStats(
                hits=int(payload.get("hits", 0)),
                misses=int(payload.get("misses", 0)),
                evictions=int(payload.get("evictions", 0)),
            ))
            per_worker.append(payload)
        hits, misses, evictions = total.snapshot()
        summary = {
            "entries": entries,
            "workers": len(per_worker),
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": total.hit_rate,
        }
        out = merged_stats_file(base)
        tmp = f"{out}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                json.dump(dict(summary, per_worker=per_worker), fh)
            os.replace(tmp, out)
        except OSError:  # pragma: no cover - disk trouble
            pass
        return summary
