"""Timing-analysis service: a persistent server over a shared cache.

The batch CLI pays the full cost of loading circuits, building delay
models, and computing convolutions on every invocation.  This package
keeps all of that resident in one long-lived process: circuits and
their timing graphs stay loaded, and ONE process-wide
content-addressed :class:`~repro.dist.cache.ConvolutionCache` is
shared by every request — so a second analysis of a sized variant, or
a second *user's* analysis of the same circuit family, replays most of
its kernel work bitwise from the cache instead of recomputing.

Layers (each its own module):

* :mod:`~repro.service.protocol` — bitwise-faithful JSON wire codecs
  plus the 503 overload-body helpers;
* :mod:`~repro.service.state` — :class:`ServiceState`, the shared
  domain state with its documented lock discipline and eviction
  policy;
* :mod:`~repro.service.server` — the stdlib HTTP front with
  **bounded admission** (fixed handler pool over a bounded queue;
  queue-full requests get an immediate 503 + ``Retry-After``) and the
  :func:`serve` lifecycle (warm-start, periodic flush, truncation-free
  SIGTERM drain);
* :mod:`~repro.service.frontend` — the pre-fork multi-worker front:
  N worker processes behind one ``SO_REUSEPORT`` port, supervised and
  snapshot-reconciled by the parent;
* :mod:`~repro.service.client` — the stdlib urllib client that
  re-materializes real result objects and retries overload rejections
  (and idempotent transport failures) with jittered backoff under a
  total deadline.

Everything is stdlib + the library's own numpy dependency; no web
framework.  CLI entry points: ``repro-ssta serve`` (``--workers N``
for the pre-fork front) and ``repro-ssta client``.
"""

from .client import AnalyzeReply, OptimizeReply, ServiceClient, YieldReply
from .frontend import ServiceFrontend, WorkerSpec, reuseport_available
from .protocol import (
    PROTOCOL_VERSION,
    overload_body,
    parse_retry_after,
    pdf_from_wire,
    pdf_to_wire,
    sizing_result_from_wire,
    sizing_result_to_wire,
)
from .server import AnalysisServer, OverloadStats, serve, start_server
from .state import OVERRIDABLE_CONFIG_FIELDS, SIZERS, ServiceState

__all__ = [
    "PROTOCOL_VERSION",
    "AnalysisServer",
    "AnalyzeReply",
    "OptimizeReply",
    "OverloadStats",
    "ServiceClient",
    "ServiceFrontend",
    "ServiceState",
    "WorkerSpec",
    "YieldReply",
    "OVERRIDABLE_CONFIG_FIELDS",
    "SIZERS",
    "overload_body",
    "parse_retry_after",
    "pdf_from_wire",
    "pdf_to_wire",
    "reuseport_available",
    "serve",
    "sizing_result_from_wire",
    "sizing_result_to_wire",
    "start_server",
]
