"""Timing-analysis service: a persistent server over a shared cache.

The batch CLI pays the full cost of loading circuits, building delay
models, and computing convolutions on every invocation.  This package
keeps all of that resident in one long-lived process: circuits and
their timing graphs stay loaded, and ONE process-wide
content-addressed :class:`~repro.dist.cache.ConvolutionCache` is
shared by every request — so a second analysis of a sized variant, or
a second *user's* analysis of the same circuit family, replays most of
its kernel work bitwise from the cache instead of recomputing.

Layers (each its own module):

* :mod:`~repro.service.protocol` — bitwise-faithful JSON wire codecs;
* :mod:`~repro.service.state` — :class:`ServiceState`, the shared
  domain state with its documented lock discipline and eviction
  policy;
* :mod:`~repro.service.server` — the stdlib ThreadingHTTPServer front
  and the :func:`serve` lifecycle (warm-start, periodic flush,
  SIGTERM drain);
* :mod:`~repro.service.client` — the stdlib urllib client that
  re-materializes real result objects.

Everything is stdlib + the library's own numpy dependency; no web
framework.  CLI entry points: ``repro-ssta serve`` and
``repro-ssta client``.
"""

from .client import AnalyzeReply, OptimizeReply, ServiceClient, YieldReply
from .protocol import (
    PROTOCOL_VERSION,
    pdf_from_wire,
    pdf_to_wire,
    sizing_result_from_wire,
    sizing_result_to_wire,
)
from .server import AnalysisServer, serve, start_server
from .state import OVERRIDABLE_CONFIG_FIELDS, SIZERS, ServiceState

__all__ = [
    "PROTOCOL_VERSION",
    "AnalysisServer",
    "AnalyzeReply",
    "OptimizeReply",
    "ServiceClient",
    "ServiceState",
    "YieldReply",
    "OVERRIDABLE_CONFIG_FIELDS",
    "SIZERS",
    "pdf_from_wire",
    "pdf_to_wire",
    "serve",
    "sizing_result_from_wire",
    "sizing_result_to_wire",
    "start_server",
]
