"""The process execution plan: a persistent spawn-safe worker pool.

:class:`ProcessExecutor` shards each kernel batch by contiguous item
range (:func:`~repro.exec.plan.shard_ranges`) across ``jobs`` worker
processes.  The pool is built from the ``spawn`` multiprocessing
context — workers never inherit forked state (locks, warm kernel
memos, open files); they are initialized exactly once per pool
lifetime by :func:`_worker_init`, which imports the library and warms
the kernel registry, and then serve shard messages for the life of the
process.  Spawn start-up costs a few hundred milliseconds per worker
(a NumPy import), which is why pools persist across analyses (see
:func:`~repro.exec.executor.get_executor`) instead of being rebuilt
per pass.

Two operand transports ship the shard payloads:

* ``shm`` (the default): operand vectors are published once into a
  content-keyed shared-memory arena (:mod:`repro.exec.arena`) and the
  payload carries ``(segment, generation, offset, length)`` index
  tuples; workers resolve them to zero-copy read-only views.  Because
  shipping is nearly free, dispatch is additionally gated by a cost
  model (:attr:`ProcessExecutor.min_dispatch_cost_us`): a batch whose
  estimated in-process kernel time is below the worker round-trip
  cost runs inline — same bits, no pointless IPC;
* ``pickle``: the PR-5 wire format — full mass vectors per shard.
  Kept as the automatic fallback where POSIX shared memory is missing
  (or fails mid-run) and as the differential reference the arena
  transport is tested against.

Correctness notes:

* only **registry** backends are shipped (by name — resolution inside
  the worker lands on the same singleton kernel the coordinator
  resolved, so results are computed by the identical implementation).
  A non-registry kernel instance cannot be identified by name alone;
  those batches silently run the serial plan instead, which is always
  bitwise-equivalent anyway;
* shard outputs are collected **in shard order** before any
  coordinator state is touched, so a worker failure surfaces before a
  half-merged batch exists.  A broken pool (a killed worker) downgrades
  the batch to in-process execution — bitwise the same results — and
  latches the executor serial for its lifetime with the arena fully
  unlinked (an explicit :meth:`ProcessExecutor.close` clears the
  latch), so a sick environment pays one spawn/crash cycle, not one
  per level;
* batches smaller than one worthwhile shard skip IPC entirely and run
  in-process (same bits, no round trip);
* a stale or corrupt arena ref in a worker raises
  :class:`~repro.errors.DistributionError` through the future — a
  loud failure, never a silently wrong answer.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
from concurrent.futures import ProcessPoolExecutor as _Pool
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from ..config import DEFAULT_TRANSPORT, KNOWN_TRANSPORTS
from ..dist.backends import (
    available_backends,
    get_backend,
    is_registry_backend,
)
from ..dist.ops import OpCounter, convolve_batch_raws, max_batch_raws
from .arena import OperandArena, arena_client, shm_available
from .executor import Executor, SERIAL_EXECUTOR
from .ipc import ShardResult
from .plan import (
    MIN_ITEMS_PER_SHARD,
    ConvolveBatch,
    ConvolveBatchRefs,
    MaxBatch,
    MaxBatchRefs,
    shard_ranges,
)

__all__ = ["ProcessExecutor", "SHM_MIN_DISPATCH_COST_US"]

#: Estimated in-process kernel cost (microseconds) below which an shm
#: batch is not worth a worker round trip.  With index-tuple payloads
#: the round trip is all latency — future submission, queue wakeups,
#: result pickling — which costs on the order of a millisecond per
#: shard, so at jobs=2 a dispatch only wins once the kernel work it
#: parallelizes exceeds roughly *twice* the round trip (the saved half
#: must beat the latency).  5 ms is that break-even with margin:
#: default-grid ISCAS levels (hundreds of ~33-bin operations at most,
#: a couple of milliseconds of kernel time) run inline and jobs>1
#: tracks serial on any core count, while fine-grid levels (thousands
#: of bins per operand, tens of milliseconds per level) clear the gate
#: and amortize the latency many times over.  Mutable per executor
#: (``min_dispatch_cost_us``); the test tier and the payload
#: benchmarks set it to 0 to force every batch across the process
#: boundary.
SHM_MIN_DISPATCH_COST_US: float = 5000.0

#: Cost-model constants: fixed per-item overhead (a NumPy kernel call)
#: and per-multiply-add throughput, both in microseconds.  Calibrated
#: only coarsely — the gate needs the right order of magnitude, not
#: the right microsecond — against the BENCH kernel rows (33-bin
#: direct convolve ≈ 12 µs).
_ITEM_OVERHEAD_US = 12.0
_MACS_PER_US = 1000.0


def _convolve_cost_us(pairs) -> float:
    """Estimated in-process cost of an ADD batch, in microseconds."""
    return sum(
        _ITEM_OVERHEAD_US + (a.size * b.size) / _MACS_PER_US
        for a, b in pairs
    )


def _max_cost_us(groups) -> float:
    """Estimated in-process cost of a MAX batch, in microseconds."""
    total = 0.0
    for g in groups:
        lo = min(p.offset for p in g)
        hi = max(p.offset + p.n_bins for p in g)
        total += _ITEM_OVERHEAD_US + len(g) * (hi - lo) / _MACS_PER_US
    return total


def _worker_init(backend_names: tuple) -> None:
    """Per-worker one-time initialization: import the library and
    resolve every registry backend so the first shard pays no import
    or registry cost.  Backends exposing ``warm_up`` (the compiled
    tier) resolve their provider here too — numba JIT compilation or
    the C-library dlopen happens at pool init, never inside the first
    level's shard."""
    for name in backend_names:
        kernel = get_backend(name)
        warm = getattr(kernel, "warm_up", None)
        if callable(warm):
            warm()


def _run_convolve_shard(batch: ConvolveBatch) -> ShardResult:
    """Worker entry point for one pickle-transport ADD shard
    (module-level so the spawn pickle can address it by qualified
    name)."""
    kernel = get_backend(batch.backend_name)
    raws = convolve_batch_raws(kernel, batch.pairs)
    return ShardResult(raws, OpCounter(convolutions=len(raws)))


def _run_max_shard(batch: MaxBatch) -> ShardResult:
    """Worker entry point for one pickle-transport MAX shard.  The
    optional backend name resolves to the same registry singleton the
    coordinator used, so a verified-bitwise compiled sweep runs the
    product here exactly as it would inline."""
    kernel = (
        get_backend(batch.backend_name)
        if batch.backend_name is not None
        else None
    )
    outs = max_batch_raws(batch.groups, kernel=kernel)
    return ShardResult(
        outs, OpCounter(max_ops=sum(len(g) - 1 for g in batch.groups))
    )


def _run_convolve_shard_refs(batch: ConvolveBatchRefs) -> ShardResult:
    """Worker entry point for one shm-transport ADD shard: resolve
    every ref to a zero-copy arena view, then compute exactly the
    pickle shard's raws."""
    client = arena_client()
    kernel = get_backend(batch.backend_name)
    pairs = [(client.view(ra), client.view(rb)) for ra, rb in batch.pairs]
    raws = convolve_batch_raws(kernel, pairs)
    return ShardResult(raws, OpCounter(convolutions=len(raws)))


def _run_max_shard_refs(batch: MaxBatchRefs) -> ShardResult:
    """Worker entry point for one shm-transport MAX shard: rebuild
    each operand as a memoized zero-copy :class:`DiscretePDF` view."""
    client = arena_client()
    kernel = (
        get_backend(batch.backend_name)
        if batch.backend_name is not None
        else None
    )
    groups = [
        tuple(client.pdf(dt, off, ref) for dt, off, ref in g)
        for g in batch.groups
    ]
    outs = max_batch_raws(groups, kernel=kernel)
    return ShardResult(
        outs, OpCounter(max_ops=sum(len(g) - 1 for g in batch.groups))
    )


def _spawn_main_importable() -> bool:
    """Can a spawn child re-import this process's ``__main__``?

    Spawn re-runs the parent's main module by path when it has a
    ``__file__`` and no importable ``__spec__`` — which explodes for
    programs fed on stdin (``__file__`` is ``'<stdin>'``).  ``python
    -c`` and REPLs carry no ``__file__`` and are skipped by spawn's
    preparation step, so they are fine.  A False verdict downgrades
    the plan to in-process execution up front — bitwise the same
    results, none of the worker-crash noise the late
    ``BrokenProcessPool`` fallback would produce.
    """
    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        return True
    path = getattr(main, "__file__", None)
    if path is None:
        return True
    return os.path.exists(path)




class ProcessExecutor(Executor):
    """Execution plan backed by a persistent ``jobs``-worker pool.

    Construction is cheap; the pool itself spawns lazily on the first
    dispatched shard (and, for the shm transport, the operand arena is
    created alongside it) and persists until :meth:`close`.  Every
    batch is bitwise-equivalent to the serial plan — sharding only
    re-partitions work whose items are independent and whose batched
    kernels are verified partition-invariant (see the package
    docstring), and the transport only changes how operand bytes reach
    the worker, never which bytes.
    """

    def __init__(
        self,
        jobs: int,
        *,
        min_items_per_shard: int = MIN_ITEMS_PER_SHARD,
        transport: str = DEFAULT_TRANSPORT,
        min_dispatch_cost_us: Optional[float] = None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 2:
            raise ValueError(
                f"ProcessExecutor needs jobs >= 2, got {jobs!r}"
            )
        if transport not in KNOWN_TRANSPORTS:
            raise ValueError(
                f"transport must be one of {KNOWN_TRANSPORTS}, "
                f"got {transport!r}"
            )
        self.jobs = jobs
        self.min_items_per_shard = min_items_per_shard
        self.transport = transport
        #: Dispatch gate for the shm transport (µs of estimated kernel
        #: time); mutable so benchmarks and the differential tier can
        #: force every batch across the process boundary with 0.
        self.min_dispatch_cost_us = (
            SHM_MIN_DISPATCH_COST_US
            if min_dispatch_cost_us is None
            else float(min_dispatch_cost_us)
        )
        self._pool: Optional[_Pool] = None
        self._arena: Optional[OperandArena] = None
        # Evaluated once per executor: __main__ importability cannot
        # change after interpreter start.
        self._spawn_ok = _spawn_main_importable()
        # Latched on the first BrokenProcessPool: an environment that
        # kills workers (OOM caps, seccomp) would otherwise pay a full
        # pool spawn/crash cycle per batch.  One failed attempt per
        # executor lifetime; everything after runs in-process.
        self._broken = False
        # Latched when shared memory fails at runtime (segment
        # creation denied, /dev/shm exhausted): payloads fall back to
        # the pickle wire format — same bits, fatter shards.
        self._shm_broken = not shm_available()
        #: Wire-payload accounting, populated only when
        #: ``payload_audit`` is set (the payload benchmark does):
        #: pickled bytes of every dispatched shard, shard count, and
        #: dispatch count.
        self.payload_audit = False
        self.payload_bytes = 0
        self.payload_shards = 0
        self.dispatches = 0

    # ------------------------------------------------------------------
    # Pool / arena lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> _Pool:
        if self._pool is None:
            self._pool = _Pool(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
                initargs=(tuple(available_backends()),),
            )
        return self._pool

    def _ensure_arena(self) -> OperandArena:
        if self._arena is None:
            self._arena = OperandArena()
        return self._arena

    @property
    def arena(self) -> Optional[OperandArena]:
        """The live operand arena, if the shm transport created one."""
        return self._arena

    def _use_shm(self) -> bool:
        return self.transport == "shm" and not self._shm_broken

    def close(self) -> None:
        """Shut the pool down and unlink the arena (idempotent).  Both
        respawn on next use — and an explicit close also clears the
        broken latches, so a caller that fixed its environment can
        retry parallel execution."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._broken = False
        self._shm_broken = not shm_available()

    def _mark_broken(self) -> None:
        """A worker died mid-batch: drop the pool, unlink the arena,
        and stop attempting parallel dispatch for this executor's
        lifetime (serial results are bitwise the same; respawning per
        batch would turn a sick environment into a per-level
        spawn/crash cycle, and a latched-serial executor must not keep
        named segments resident)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._broken = True

    # ------------------------------------------------------------------
    # Warm-start support
    # ------------------------------------------------------------------
    def preload_operands(self, arrays) -> int:
        """Publish operand vectors into the arena ahead of dispatch.

        Used by ``--cache-file`` warm starts: a loaded snapshot's
        result vectors are the operands of the coming run's first
        levels, so publishing them up front means warm shards ship
        index tuples immediately.  Returns the number of vectors
        handed to the arena (0 when the shm transport is unavailable —
        preloading is purely an optimization, never a correctness
        step)."""
        if self._broken or not self._use_shm():
            return 0
        arrays = list(arrays)
        if not arrays:
            return 0
        try:
            arena = self._ensure_arena()
            with arena.pinned() as token:
                arena.publish(arrays, token=token)
        except OSError:
            self._shm_broken = True
            return 0
        return len(arrays)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _dispatch(self, worker, shards, counter: Optional[OpCounter]) -> list:
        """Run shard payloads through the pool and merge determinately:
        outputs concatenated in shard (= item) order, counter deltas
        summed.  Collection completes before any merge, so a raised
        shard leaves the coordinator untouched."""
        if self.payload_audit:
            self.payload_bytes += sum(
                len(pickle.dumps(s, pickle.HIGHEST_PROTOCOL))
                for s in shards
            )
            self.payload_shards += len(shards)
            self.dispatches += 1
        pool = self._ensure_pool()
        futures = [pool.submit(worker, shard) for shard in shards]
        results = [f.result() for f in futures]
        outputs: list = []
        for res in results:
            outputs.extend(res.outputs)
            if counter is not None:
                counter.merge(res.counter)
        return outputs

    def run_convolve_batch(self, kernel, pairs, *, counter=None):
        pairs = list(pairs)
        bounds = shard_ranges(
            len(pairs), self.jobs,
            min_items_per_shard=self.min_items_per_shard,
        )
        if (len(bounds) <= 1 or self._broken or not self._spawn_ok
                or not is_registry_backend(kernel)):
            return SERIAL_EXECUTOR.run_convolve_batch(
                kernel, pairs, counter=counter
            )
        name = kernel.name
        if self._use_shm():
            if _convolve_cost_us(pairs) < self.min_dispatch_cost_us:
                return SERIAL_EXECUTOR.run_convolve_batch(
                    kernel, pairs, counter=counter
                )
            try:
                arena = self._ensure_arena()
                with arena.pinned() as token:
                    flat = [m for pair in pairs for m in pair]
                    refs = arena.publish(flat, token=token)
                    ref_pairs = [
                        (refs[2 * i], refs[2 * i + 1])
                        for i in range(len(pairs))
                    ]
                    shards = [
                        ConvolveBatchRefs(
                            name, tuple(ref_pairs[start:stop])
                        )
                        for start, stop in bounds
                    ]
                    return self._dispatch(
                        _run_convolve_shard_refs, shards, counter
                    )
            except OSError:
                # Shared memory failed mid-run (creation denied,
                # /dev/shm full): latch the pickle wire format and
                # fall through — the batch still runs, same bits.
                self._shm_broken = True
            except BrokenProcessPool:
                self._mark_broken()
                return SERIAL_EXECUTOR.run_convolve_batch(
                    kernel, pairs, counter=counter
                )
        shards = [
            ConvolveBatch(name, tuple(pairs[start:stop]))
            for start, stop in bounds
        ]
        try:
            return self._dispatch(_run_convolve_shard, shards, counter)
        except BrokenProcessPool:
            self._mark_broken()
            return SERIAL_EXECUTOR.run_convolve_batch(
                kernel, pairs, counter=counter
            )

    def run_max_batch(self, groups, *, counter=None, kernel=None):
        groups = list(groups)
        # Only registry backends cross the process boundary (by name);
        # anything else ships no kernel context — the NumPy sweep in
        # the worker is bitwise the compiled one by its verification,
        # so this is a cost decision, not a correctness one.
        name = (
            kernel.name
            if kernel is not None and is_registry_backend(kernel)
            else None
        )
        bounds = shard_ranges(
            len(groups), self.jobs,
            min_items_per_shard=self.min_items_per_shard,
        )
        if len(bounds) <= 1 or self._broken or not self._spawn_ok:
            return SERIAL_EXECUTOR.run_max_batch(
                groups, counter=counter, kernel=kernel
            )
        if self._use_shm():
            if _max_cost_us(groups) < self.min_dispatch_cost_us:
                return SERIAL_EXECUTOR.run_max_batch(
                    groups, counter=counter, kernel=kernel
                )
            try:
                arena = self._ensure_arena()
                with arena.pinned() as token:
                    flat = [p.masses for g in groups for p in g]
                    refs = arena.publish(flat, token=token)
                    it = iter(refs)
                    ref_groups = [
                        tuple(
                            (p.dt, p.offset, next(it)) for p in g
                        )
                        for g in groups
                    ]
                    shards = [
                        MaxBatchRefs(
                            tuple(ref_groups[start:stop]), name
                        )
                        for start, stop in bounds
                    ]
                    return self._dispatch(
                        _run_max_shard_refs, shards, counter
                    )
            except OSError:
                self._shm_broken = True
            except BrokenProcessPool:
                self._mark_broken()
                return SERIAL_EXECUTOR.run_max_batch(
                    groups, counter=counter, kernel=kernel
                )
        shards = [
            MaxBatch(
                tuple(tuple(g) for g in groups[start:stop]), name
            )
            for start, stop in bounds
        ]
        try:
            return self._dispatch(_run_max_shard, shards, counter)
        except BrokenProcessPool:
            self._mark_broken()
            return SERIAL_EXECUTOR.run_max_batch(
                groups, counter=counter, kernel=kernel
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self._pool is None else "live"
        return (
            f"ProcessExecutor(jobs={self.jobs}, "
            f"transport={self.transport!r}, pool={state})"
        )
