"""The process execution plan: a persistent spawn-safe worker pool.

:class:`ProcessExecutor` shards each kernel batch by contiguous item
range (:func:`~repro.exec.plan.shard_ranges`) across ``jobs`` worker
processes.  The pool is built from the ``spawn`` multiprocessing
context — workers never inherit forked state (locks, warm kernel
memos, open files); they are initialized exactly once per pool
lifetime by :func:`_worker_init`, which imports the library and warms
the kernel registry, and then serve shard messages for the life of the
process.  Spawn start-up costs a few hundred milliseconds per worker
(a NumPy import), which is why pools persist across analyses (see
:func:`~repro.exec.executor.get_executor`) instead of being rebuilt
per pass.

Correctness notes:

* only **registry** backends are shipped (by name — resolution inside
  the worker lands on the same singleton kernel the coordinator
  resolved, so results are computed by the identical implementation).
  A non-registry kernel instance cannot be identified by name alone;
  those batches silently run the serial plan instead, which is always
  bitwise-equivalent anyway;
* shard outputs are collected **in shard order** before any
  coordinator state is touched, so a worker failure surfaces before a
  half-merged batch exists.  A broken pool (a killed worker) downgrades
  the batch to in-process execution — bitwise the same results — and
  latches the executor serial for its lifetime (an explicit
  :meth:`ProcessExecutor.close` clears the latch), so a sick
  environment pays one spawn/crash cycle, not one per level;
* batches smaller than one worthwhile shard skip IPC entirely and run
  in-process (same bits, no round trip).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor as _Pool
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from ..dist.backends import (
    available_backends,
    get_backend,
    is_registry_backend,
)
from ..dist.ops import OpCounter, convolve_batch_raws, max_batch_raws
from .executor import Executor, SERIAL_EXECUTOR
from .ipc import ShardResult
from .plan import MIN_ITEMS_PER_SHARD, ConvolveBatch, MaxBatch, shard_ranges

__all__ = ["ProcessExecutor"]


def _worker_init(backend_names: tuple) -> None:
    """Per-worker one-time initialization: import the library and
    resolve every registry backend so the first shard pays no import
    or registry cost."""
    for name in backend_names:
        get_backend(name)


def _run_convolve_shard(batch: ConvolveBatch) -> ShardResult:
    """Worker entry point for one ADD shard (module-level so the spawn
    pickle can address it by qualified name)."""
    kernel = get_backend(batch.backend_name)
    raws = convolve_batch_raws(kernel, batch.pairs)
    return ShardResult(raws, OpCounter(convolutions=len(raws)))


def _run_max_shard(batch: MaxBatch) -> ShardResult:
    """Worker entry point for one MAX shard."""
    outs = max_batch_raws(batch.groups)
    return ShardResult(
        outs, OpCounter(max_ops=sum(len(g) - 1 for g in batch.groups))
    )


def _spawn_main_importable() -> bool:
    """Can a spawn child re-import this process's ``__main__``?

    Spawn re-runs the parent's main module by path when it has a
    ``__file__`` and no importable ``__spec__`` — which explodes for
    programs fed on stdin (``__file__`` is ``'<stdin>'``).  ``python
    -c`` and REPLs carry no ``__file__`` and are skipped by spawn's
    preparation step, so they are fine.  A False verdict downgrades
    the plan to in-process execution up front — bitwise the same
    results, none of the worker-crash noise the late
    ``BrokenProcessPool`` fallback would produce.
    """
    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        return True
    path = getattr(main, "__file__", None)
    if path is None:
        return True
    return os.path.exists(path)




class ProcessExecutor(Executor):
    """Execution plan backed by a persistent ``jobs``-worker pool.

    Construction is cheap; the pool itself spawns lazily on the first
    dispatched shard and persists until :meth:`close`.  Every batch is
    bitwise-equivalent to the serial plan — sharding only re-partitions
    work whose items are independent and whose batched kernels are
    verified partition-invariant (see the package docstring).
    """

    def __init__(
        self,
        jobs: int,
        *,
        min_items_per_shard: int = MIN_ITEMS_PER_SHARD,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 2:
            raise ValueError(
                f"ProcessExecutor needs jobs >= 2, got {jobs!r}"
            )
        self.jobs = jobs
        self.min_items_per_shard = min_items_per_shard
        self._pool: Optional[_Pool] = None
        # Evaluated once per executor: __main__ importability cannot
        # change after interpreter start.
        self._spawn_ok = _spawn_main_importable()
        # Latched on the first BrokenProcessPool: an environment that
        # kills workers (OOM caps, seccomp) would otherwise pay a full
        # pool spawn/crash cycle per batch.  One failed attempt per
        # executor lifetime; everything after runs in-process.
        self._broken = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> _Pool:
        if self._pool is None:
            self._pool = _Pool(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
                initargs=(tuple(available_backends()),),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent).  It respawns on next use —
        and an explicit close also clears the broken latch, so a
        caller that fixed its environment can retry parallel
        execution."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._broken = False

    def _mark_broken(self) -> None:
        """A worker died mid-batch: drop the pool and stop attempting
        parallel dispatch for this executor's lifetime (serial results
        are bitwise the same; respawning per batch would turn a sick
        environment into a per-level spawn/crash cycle)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._broken = True

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _dispatch(self, worker, shards, counter: Optional[OpCounter]) -> list:
        """Run shard payloads through the pool and merge determinately:
        outputs concatenated in shard (= item) order, counter deltas
        summed.  Collection completes before any merge, so a raised
        shard leaves the coordinator untouched."""
        pool = self._ensure_pool()
        futures = [pool.submit(worker, shard) for shard in shards]
        results = [f.result() for f in futures]
        outputs: list = []
        for res in results:
            outputs.extend(res.outputs)
            if counter is not None:
                counter.merge(res.counter)
        return outputs

    def run_convolve_batch(self, kernel, pairs, *, counter=None):
        pairs = list(pairs)
        bounds = shard_ranges(
            len(pairs), self.jobs,
            min_items_per_shard=self.min_items_per_shard,
        )
        if (len(bounds) <= 1 or self._broken or not self._spawn_ok
                or not is_registry_backend(kernel)):
            return SERIAL_EXECUTOR.run_convolve_batch(
                kernel, pairs, counter=counter
            )
        name = kernel.name
        shards = [
            ConvolveBatch(name, tuple(pairs[start:stop]))
            for start, stop in bounds
        ]
        try:
            return self._dispatch(_run_convolve_shard, shards, counter)
        except BrokenProcessPool:
            self._mark_broken()
            return SERIAL_EXECUTOR.run_convolve_batch(
                kernel, pairs, counter=counter
            )

    def run_max_batch(self, groups, *, counter=None):
        groups = list(groups)
        bounds = shard_ranges(
            len(groups), self.jobs,
            min_items_per_shard=self.min_items_per_shard,
        )
        if len(bounds) <= 1 or self._broken or not self._spawn_ok:
            return SERIAL_EXECUTOR.run_max_batch(groups, counter=counter)
        shards = [
            MaxBatch(tuple(tuple(g) for g in groups[start:stop]))
            for start, stop in bounds
        ]
        try:
            return self._dispatch(_run_max_shard, shards, counter)
        except BrokenProcessPool:
            self._mark_broken()
            return SERIAL_EXECUTOR.run_max_batch(groups, counter=counter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self._pool is None else "live"
        return f"ProcessExecutor(jobs={self.jobs}, pool={state})"
