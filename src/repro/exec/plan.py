"""Shardable work descriptions and the shard geometry.

The engines no longer hand operand batches straight to a kernel; they
describe the work — *which* raw computations a level still needs after
cache resolution — and an :class:`~repro.exec.Executor` decides where
it runs.  Two batch shapes cover the whole SSTA inner loop:

* :class:`ConvolveBatch` — one raw linear convolution per ``(a, b)``
  mass-vector pair, under a named backend (the ADD side);
* :class:`MaxBatch` — one independence-MAX CDF product per operand
  group (the MAX side; backend-invariant numerics).

Both are pure data: operand payloads plus enough context to resolve
the kernel in another process.  Items within a batch are mutually
independent by construction (the level schedulers only batch
independent work), so *any* partition into shards computes the same
bits; :func:`shard_ranges` picks the canonical one — contiguous,
balanced, at most ``jobs`` shards, never slicing below
``min_items_per_shard`` — so small batches do not drown in per-shard
dispatch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ConvolveBatch",
    "MaxBatch",
    "ConvolveBatchRefs",
    "MaxBatchRefs",
    "shard_ranges",
]

#: Smallest shard worth a worker round trip.  Below this, the pickle +
#: queue cost per item exceeds the kernel cost of typical default-grid
#: operands, so the shard planner folds tiny batches into fewer shards
#: (a single shard degenerates to in-process execution).
MIN_ITEMS_PER_SHARD: int = 2


@dataclass(frozen=True)
class ConvolveBatch:
    """Raw ADD work: ``pairs[i]`` is an ``(a_masses, b_masses)`` tuple
    of 1-D float64 vectors; the kernel is resolved from
    ``backend_name`` in the executing process (registry backends only —
    a backend instance cannot be shipped, its identity is its name)."""

    backend_name: str
    pairs: tuple

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class MaxBatch:
    """Raw MAX work: ``groups[i]`` is a tuple of
    :class:`~repro.dist.pdf.DiscretePDF` operands (offsets matter —
    the CDF product runs on the union grid).  The independence MAX is
    backend-invariant, so ``backend_name`` is optional context, not a
    numeric input: when set (registry backends only), the worker
    resolves it so a verified-bitwise compiled MAX sweep can run the
    product — same bits either way, by that verification."""

    groups: tuple
    backend_name: Optional[str] = None

    def __len__(self) -> int:
        return len(self.groups)


@dataclass(frozen=True)
class ConvolveBatchRefs:
    """ADD work by reference: ``pairs[i]`` is an ``(ref_a, ref_b)``
    tuple of arena refs (see :mod:`repro.exec.arena`) naming the two
    operand mass vectors by content.  The payload carries no vector
    bytes at all — a worker resolves each ref to a zero-copy read-only
    view over the shared-memory segment and computes exactly what the
    equivalent :class:`ConvolveBatch` would."""

    backend_name: str
    pairs: tuple

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass(frozen=True)
class MaxBatchRefs:
    """MAX work by reference: ``groups[i]`` is a tuple of
    ``(dt, offset, ref)`` operand descriptors — the grid spacing and
    integer bin offset that, together with the arena-resident mass
    vector, define each :class:`~repro.dist.pdf.DiscretePDF` operand.
    Workers rebuild the PDFs as zero-copy views
    (:meth:`~repro.dist.pdf.DiscretePDF._from_view`), so a group's
    union-grid geometry is bit for bit the :class:`MaxBatch` one.
    ``backend_name`` carries the same optional compiled-sweep context
    as :class:`MaxBatch`."""

    groups: tuple
    backend_name: Optional[str] = None

    def __len__(self) -> int:
        return len(self.groups)


def shard_ranges(
    n_items: int,
    jobs: int,
    *,
    min_items_per_shard: int = MIN_ITEMS_PER_SHARD,
) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard bounds covering ``n_items``.

    At most ``jobs`` shards, sized within one item of each other
    (earlier shards take the remainder), and no more shards than
    ``n_items // min_items_per_shard`` so tiny batches are not split
    below the worthwhile granularity — with fewer items than
    ``min_items_per_shard`` a single shard covers everything.  The
    concatenation of the ranges is always exactly ``range(n_items)``,
    which is what makes the shard merge order-deterministic.
    """
    if n_items <= 0:
        return []
    n_shards = min(jobs, max(1, n_items // max(1, min_items_per_shard)))
    base, extra = divmod(n_items, n_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for s in range(n_shards):
        stop = start + base + (1 if s < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds
