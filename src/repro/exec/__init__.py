"""Execution plans for the timing engines: serial or sharded-parallel.

The level-batched scheduler of PR 4 turned SSTA propagation into a
sequence of *batches* — all of a topological level's fan-in ADD pairs,
then all of its MAX reductions — where every item in a batch is
independent of every other.  This package makes the execution of those
batches a pluggable **execution plan**:

* :class:`SerialExecutor` runs each batch in-process — today's
  behavior, and the differential reference;
* :class:`ProcessExecutor` shards each batch by contiguous item range
  across a persistent pool of worker processes (``spawn`` context, so
  workers are initialized once — importing the library and warming the
  kernel registry — and never inherit ambient state).

The split of responsibilities is what makes parallel execution exactly
equivalent to serial, not just statistically close:

* **planning stays in the coordinator.**  Cache probes, intra-batch
  dedupe, node-memo resolution, result construction, counter hit
  tallies, and cache stores all run in the calling process (see
  ``repro.dist.ops.convolve_many`` / ``stat_max_groups``), so the
  cache request stream — and hence :class:`~repro.dist.cache.CacheStats`
  — is *identical* to the serial run by construction;
* **workers compute raw kernel outputs only.**  A shard is a pure
  function of its operand payloads
  (:func:`~repro.dist.ops.convolve_batch_raws` /
  :func:`~repro.dist.ops.max_batch_raws`), and the PR-2/PR-4 verified
  contracts — batched == looped, bitwise, per transform size and per
  fan-in count — guarantee any contiguous sharding of a batch
  reproduces the unsharded batch bit for bit;
* **merge is deterministic.**  Shard outputs are reassembled in item
  order, and per-shard :class:`~repro.dist.ops.OpCounter` deltas are
  summed — integer addition, so merge order cannot matter (pinned by
  the counter-merge property suite).

Engines resolve their plan from ``AnalysisConfig(jobs=N)`` via
:func:`get_executor`; the CLI exposes it as ``--jobs``.
"""

from .executor import (
    Executor,
    SerialExecutor,
    SERIAL_EXECUTOR,
    get_executor,
    shutdown_executors,
)
from .plan import (
    ConvolveBatch,
    ConvolveBatchRefs,
    MaxBatch,
    MaxBatchRefs,
    shard_ranges,
)

#: Names the arena module provides; re-exported lazily alongside
#: ProcessExecutor so serial runs never import shared_memory.
_ARENA_EXPORTS = (
    "OperandArena",
    "ArenaClient",
    "arena_client",
    "shm_available",
    "live_arena_stats",
    "unlink_all_arenas",
)


def __getattr__(name: str):
    # ProcessExecutor and the arena names re-export lazily (PEP 562):
    # the pool/arena modules drag in multiprocessing/concurrent.futures
    # /shared_memory, which serial runs — and every spawn worker's own
    # library import — should not pay for.  ``get_executor(jobs > 1)``
    # imports them on first need.
    if name == "ProcessExecutor":
        from .pool import ProcessExecutor

        return ProcessExecutor
    if name in _ARENA_EXPORTS:
        from . import arena

        return getattr(arena, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Executor",
    "SerialExecutor",
    "SERIAL_EXECUTOR",
    "ProcessExecutor",
    "OperandArena",
    "ArenaClient",
    "arena_client",
    "shm_available",
    "live_arena_stats",
    "unlink_all_arenas",
    "ConvolveBatch",
    "ConvolveBatchRefs",
    "MaxBatch",
    "MaxBatchRefs",
    "shard_ranges",
    "get_executor",
    "shutdown_executors",
]
