"""The Executor interface, the serial reference plan, and resolution.

An :class:`Executor` runs the raw compute step of one kernel batch —
nothing more.  The calling kernel layer (``repro.dist.ops``) owns
cache resolution, dedupe, result construction, and stores, so every
executor sees only pure, independent work items and the equivalence
obligation is sharp: *same outputs, bit for bit, and computed-op
tallies that sum to the inline tally*.

:class:`SerialExecutor` is the reference implementation (and what
``jobs=1`` resolves to): it executes the batch in-process through
exactly the helpers the inline path uses, so passing it anywhere an
executor is accepted changes nothing but the call stack.  The process
plan lives in :mod:`repro.exec.pool`.

:func:`get_executor` resolves ``AnalysisConfig.jobs`` to a shared
executor instance — process pools are expensive to build, so one pool
per jobs count persists for the life of the process (workers are
stateless between shards; sharing a pool across analyses is safe) and
:func:`shutdown_executors` tears them down (registered ``atexit``).
"""

from __future__ import annotations

import atexit
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dist.ops import OpCounter, convolve_batch_raws, max_batch_raws

__all__ = [
    "Executor",
    "SerialExecutor",
    "SERIAL_EXECUTOR",
    "get_executor",
    "shutdown_executors",
]


class Executor:
    """Execution plan for independent kernel-batch work.

    Subclasses implement the two raw batch shapes of the SSTA inner
    loop.  Contracts shared by every implementation:

    * outputs are returned **in item order** and are bitwise identical
      to :func:`~repro.dist.ops.convolve_batch_raws` /
      :func:`~repro.dist.ops.max_batch_raws` on the same batch;
    * ``counter`` (when given) receives exactly the computed-op tally
      the inline path would record — one convolution per pair,
      ``len(group) - 1`` max ops per group — via commutative
      :meth:`~repro.dist.ops.OpCounter.merge` of per-shard deltas;
    * an empty batch performs no work and touches nothing.
    """

    #: Worker-process count of the plan (1 for in-process execution).
    jobs: int = 1

    def run_convolve_batch(
        self,
        kernel,
        pairs: Sequence[Tuple[np.ndarray, np.ndarray]],
        *,
        counter: Optional[OpCounter] = None,
    ) -> list:
        """Raw convolved mass vectors, one per operand pair."""
        raise NotImplementedError

    def run_max_batch(
        self,
        groups: Sequence,
        *,
        counter: Optional[OpCounter] = None,
        kernel=None,
    ) -> list:
        """``(lo_offset, raw masses)`` per operand group.

        ``kernel`` (a resolved backend, optional) is forwarded to
        :func:`~repro.dist.ops.max_batch_raws` so a backend with a
        verified-bitwise compiled MAX sweep can run the product; the
        numerics are backend-invariant, so plans are free to drop it
        (e.g. for non-registry instances that cannot cross a process
        boundary) without changing a single bit."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (idempotent)."""


class SerialExecutor(Executor):
    """In-process execution — the ``jobs=1`` plan and the differential
    reference every parallel plan is tested against."""

    jobs = 1

    def run_convolve_batch(self, kernel, pairs, *, counter=None):
        raws = convolve_batch_raws(kernel, pairs)
        if counter is not None:
            counter.merge(OpCounter(convolutions=len(raws)))
        return raws

    def run_max_batch(self, groups, *, counter=None, kernel=None):
        outs = max_batch_raws(groups, kernel=kernel)
        if counter is not None:
            counter.merge(
                OpCounter(max_ops=sum(len(g) - 1 for g in groups))
            )
        return outs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


#: Shared serial plan — stateless, so one instance serves everyone.
SERIAL_EXECUTOR = SerialExecutor()

#: Live pooled executors keyed by ``(jobs, transport)`` — each key
#: owns one persistent worker pool (and, for the shm transport, one
#: operand arena).  ``jobs=1`` resolves to the serial singleton
#: without touching the registry.
_EXECUTORS: Dict[tuple, Executor] = {}


def get_executor(jobs: int, transport: str = "shm") -> Executor:
    """Resolve ``(jobs, transport)`` to the shared executor running
    that plan.

    ``jobs=1`` returns the serial singleton (the transport is inert —
    there is no process boundary to move operands across); ``jobs=N``
    returns the process executor owning the persistent N-worker pool
    for that transport, creating it on first request (the pool itself
    spawns lazily on first dispatch).
    """
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError(f"jobs must be an int >= 1, got {jobs!r}")
    if jobs == 1:
        return SERIAL_EXECUTOR
    key = (jobs, transport)
    executor = _EXECUTORS.get(key)
    if executor is None:
        from .pool import ProcessExecutor

        executor = ProcessExecutor(jobs, transport=transport)
        _EXECUTORS[key] = executor
    return executor


def shutdown_executors() -> None:
    """Close every pooled executor's worker pool and unlink its
    operand arena.  The executor instances stay registered — engines
    resolve and hold executors by reference (a
    :class:`~repro.core.perturbation.PerturbationFront` keeps its plan
    from construction), so dropping them here would let a stale
    reference respawn an *untracked* pool beside a fresh registry one.
    Keeping the instances makes ``get_executor`` a stable singleton
    per ``(jobs, transport)``: a post-shutdown dispatch respawns the
    one tracked pool, which the next shutdown reaches again.  Safe to
    call repeatedly."""
    for executor in _EXECUTORS.values():
        executor.close()


atexit.register(shutdown_executors)
