"""Compact IPC payloads between the coordinator and worker processes.

Everything crossing the process boundary is defined here, so the wire
contract is auditable in one place:

* **operands** travel one of two ways.  Under the default ``shm``
  transport they do not travel at all: the payload carries arena
  *refs* — ``(segment, generation, offset, length)`` index tuples
  (plus ``(dt, offset)`` grid context for MAX operands; see
  :class:`~repro.exec.plan.ConvolveBatchRefs` /
  :class:`~repro.exec.plan.MaxBatchRefs`) — and the bytes themselves
  live in shared-memory segments the workers map once
  (:mod:`repro.exec.arena`).  Under the ``pickle`` fallback they
  travel as plain NumPy mass vectors (ADD) or memo-stripped
  :class:`~repro.dist.pdf.DiscretePDF` instances (MAX) — the PDF's
  ``__getstate__`` ships only ``(dt, offset, masses)``, so a level
  shard's payload is a few hundred bytes per operand and pickle's
  object memo deduplicates the heavily shared ones (every gate's
  delay PDF, an arrival feeding several fan-in lists) automatically;
* **results** travel as a :class:`ShardResult`: the shard's raw kernel
  outputs in item order plus the shard's
  :class:`~repro.dist.ops.OpCounter` delta.  Raw outputs are
  un-normalized mass vectors — bit-for-bit what the in-process kernel
  would have produced — and the coordinator performs every downstream
  step (normalization, trimming, cache stores) itself, so worker
  results are indistinguishable from local ones;
* counter deltas contain **computed** tallies only (cache hits are a
  coordinator-side concept), and merging them is commutative integer
  addition, so shard completion order can never leak into the
  accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dist.ops import OpCounter

__all__ = ["ShardResult"]


@dataclass
class ShardResult:
    """One worker shard's outputs plus its operation-count delta.

    ``outputs`` is aligned with the shard's item order: raw convolved
    mass vectors for a :class:`~repro.exec.plan.ConvolveBatch` shard,
    ``(lo_offset, raw mass vector)`` tuples for a
    :class:`~repro.exec.plan.MaxBatch` shard.
    """

    outputs: list
    counter: OpCounter = field(default_factory=OpCounter)
