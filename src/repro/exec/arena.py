"""Shared-memory operand arena: zero-copy transport for kernel batches.

Mass vectors are immutable and content-addressed (the convolution
cache already keys them by SHA-1), so the coordinator never needs to
*copy* an operand to a worker — it needs to publish the bytes once and
ship a name.  The arena is that publication channel:

* the **coordinator** owns an :class:`OperandArena`: named
  ``multiprocessing.shared_memory`` slabs into which it appends each
  distinct operand vector exactly once per epoch, keyed by content
  fingerprint.  Publishing returns :data:`ArenaRef` index tuples —
  ``(segment_name, generation, byte_offset, n_elems)`` — which is all
  a shard payload carries across the process boundary;
* each **worker** holds an :class:`ArenaClient`: a process-resident
  read-through view of everything the coordinator has published.  The
  client attaches segments by name on first reference, materializes
  read-only float64 views directly over the mapped buffer (zero copy,
  no allocation), and memoizes both the views and the
  :class:`~repro.dist.pdf.DiscretePDF` wrappers built from them — so a
  delay PDF referenced on every level costs one page mapping for the
  life of the pool, and per-instance memos (``_unit_cdf``) stay warm
  across batches.

Lifecycle discipline
--------------------
The arena is bounded by a byte budget.  Reclaiming space can never be
allowed to unmap a segment a worker is still reading, so eviction is
**epochal** and **pin-aware**:

* every segment name and every ref carries the arena's *generation*;
  a 16-byte header (magic + generation) is stamped into each slab so
  an attaching client can verify it is mapping what the ref promised.
  A mismatch — a stale ref after an epoch turn, a corrupted header —
  raises :class:`~repro.errors.DistributionError` rather than ever
  returning wrong bytes;
* a batch in flight holds a *pin* (see :meth:`OperandArena.pinned`).
  ``publish`` starts a new epoch — bump the generation, unlink every
  slab, forget the index — only when no pin other than the caller's
  own is active; otherwise the reset is deferred and the budget is
  allowed to overshoot until the in-flight batches drain.  Unlinking
  removes the *name*; workers still mapping an old slab keep valid
  pages until they drop them (clients drop all state from older
  generations the moment a newer ref arrives);
* teardown is resource-tracker clean: the creating process unlinks
  every slab on :meth:`OperandArena.close` (reached via the executor's
  ``close``, :func:`~repro.exec.executor.shutdown_executors`, and the
  module ``atexit`` sweep of :data:`_LIVE_ARENAS`).  Workers are spawn
  children sharing the coordinator's resource-tracker process, so
  their attach registrations collapse into the creator's (set
  semantics) and the single unlink leaves the tracker with nothing to
  warn about — no leaked-segment stderr noise from any exit path.
"""

from __future__ import annotations

import atexit
import os
import struct
import threading
import weakref
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dist.cache import content_fingerprint
from ..dist.pdf import DiscretePDF
from ..errors import DistributionError

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

__all__ = [
    "OperandArena",
    "ArenaClient",
    "arena_client",
    "shm_available",
    "live_arena_stats",
    "unlink_all_arenas",
]

#: One ref = ``(segment_name, generation, byte_offset, n_elems)``.
ArenaRef = Tuple[str, int, int, int]

#: Slab header: 8-byte magic + little-endian u64 generation.
_MAGIC = b"RPRARNA1"
_HEADER = struct.Struct("<8sQ")
HEADER_BYTES = _HEADER.size

#: Default slab allocation unit.  Slabs are appended as needed; a
#: single oversized vector gets a slab of its own size.
DEFAULT_SLAB_BYTES = 4 << 20

#: Soft byte budget per arena.  Crossing it triggers an epoch turn on
#: the next publish that holds the only pin; a single batch larger
#: than the budget is still published whole (the budget bounds steady
#: state, not one batch).
DEFAULT_BUDGET_BYTES = 64 << 20

#: Live arenas created by this process, swept by ``atexit`` (and by
#: the service's SIGTERM drain) so an abandoned executor can never
#: leave named segments behind.
_LIVE_ARENAS: "weakref.WeakSet[OperandArena]" = weakref.WeakSet()

_shm_probe_result: Optional[bool] = None


def shm_available() -> bool:
    """Can this platform create a POSIX shared-memory segment?

    Probed once per process (create + unlink of a minimal segment).  A
    False verdict makes the shm transport degrade to pickle up front.
    """
    global _shm_probe_result
    if _shm_probe_result is None:
        if _shm is None:
            _shm_probe_result = False
        else:
            try:
                seg = _shm.SharedMemory(create=True, size=16)
                seg.close()
                seg.unlink()
                _shm_probe_result = True
            except (OSError, ValueError):
                _shm_probe_result = False
    return _shm_probe_result


class OperandArena:
    """Coordinator-owned shared-memory store of operand vectors.

    Thread-safe: the service front runs analyses from handler threads
    that share one executor, so publish/pin/reset all serialize on one
    mutex.  All published vectors are float64 and 8-byte aligned.
    """

    def __init__(
        self,
        *,
        slab_bytes: int = DEFAULT_SLAB_BYTES,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
    ) -> None:
        if _shm is None or not shm_available():
            raise DistributionError(
                "shared memory is not available on this platform"
            )
        self._slab_bytes = int(slab_bytes)
        self._budget_bytes = int(budget_bytes)
        self._prefix = f"rpa-{os.getpid():x}-{os.urandom(4).hex()}"
        self._lock = threading.Lock()
        self._slabs: List = []  # SharedMemory, creation order
        self._tail_used = 0  # bytes used in the last slab (incl. header)
        self._index: Dict[bytes, ArenaRef] = {}
        self._used_bytes = 0  # payload bytes across all slabs
        self.generation = 1
        self._pins: set = set()
        self._pin_seq = 0
        self._reset_pending = False
        self._closed = False
        _LIVE_ARENAS.add(self)

    # ------------------------------------------------------------------
    # Introspection (leak tests, service stats)
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Published payload bytes currently held in named segments."""
        with self._lock:
            return self._used_bytes

    @property
    def segment_names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(s.name for s in self._slabs)

    @property
    def entries(self) -> int:
        with self._lock:
            return len(self._index)

    # ------------------------------------------------------------------
    # Pinning: a batch in flight defers epoch turns
    # ------------------------------------------------------------------
    @contextmanager
    def pinned(self):
        """Hold a pin for the duration of one publish+dispatch cycle.

        Yields a token; passing it to :meth:`publish` marks the
        caller's own pin as safe to reset over (its refs are not in
        flight yet).  Pins from *other* threads defer any epoch turn.
        """
        with self._lock:
            self._pin_seq += 1
            token = self._pin_seq
            self._pins.add(token)
        try:
            yield token
        finally:
            with self._lock:
                self._pins.discard(token)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(
        self,
        arrays: Sequence[np.ndarray],
        *,
        token: Optional[int] = None,
    ) -> List[ArenaRef]:
        """Ensure every vector is resident; return one ref per input.

        Content-deduplicated: a vector already published in the
        current epoch returns its existing ref.  All refs returned by
        one call belong to one generation — if an epoch turn is
        needed (budget crossed, or one was deferred by pins), it
        happens *before* any vector is written, never between two.
        """
        with self._lock:
            if self._closed:
                raise DistributionError("operand arena is closed")
            digests = [content_fingerprint(a) for a in arrays]
            fresh: Dict[bytes, np.ndarray] = {}
            for d, a in zip(digests, arrays):
                if d not in self._index and d not in fresh:
                    fresh[d] = a
            need = sum(8 * a.size for a in fresh.values())
            over = self._used_bytes + need > self._budget_bytes
            if (over or self._reset_pending) and self._used_bytes:
                if self._pins <= ({token} if token is not None else set()):
                    self._reset_locked()
                    # The index is gone: every vector is fresh again.
                    fresh = {}
                    for d, a in zip(digests, arrays):
                        if d not in fresh:
                            fresh[d] = a
                    need = sum(8 * a.size for a in fresh.values())
                else:
                    self._reset_pending = True
            for d, a in fresh.items():
                self._index[d] = self._append_locked(a)
            return [self._index[d] for d in digests]

    def _append_locked(self, arr: np.ndarray) -> ArenaRef:
        nbytes = 8 * arr.size
        if not self._slabs or self._tail_used + nbytes > self._slabs[-1].size:
            self._new_slab_locked(nbytes)
        slab = self._slabs[-1]
        off = self._tail_used
        slab.buf[off : off + nbytes] = np.ascontiguousarray(
            arr, dtype=np.float64
        ).tobytes()
        self._tail_used = off + nbytes
        self._used_bytes += nbytes
        return (slab.name, self.generation, off, int(arr.size))

    def _new_slab_locked(self, min_payload: int) -> None:
        size = max(self._slab_bytes, HEADER_BYTES + min_payload)
        name = f"{self._prefix}-g{self.generation}-s{len(self._slabs)}"
        slab = _shm.SharedMemory(name=name, create=True, size=size)
        slab.buf[:HEADER_BYTES] = _HEADER.pack(_MAGIC, self.generation)
        self._slabs.append(slab)
        # Alignment: the header is 16 bytes and every vector a multiple
        # of 8, so offsets stay 8-byte aligned without padding.
        self._tail_used = HEADER_BYTES

    # ------------------------------------------------------------------
    # Epoch turns and teardown
    # ------------------------------------------------------------------
    def _reset_locked(self) -> None:
        for slab in self._slabs:
            slab.close()
            try:
                slab.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._slabs = []
        self._index = {}
        self._tail_used = 0
        self._used_bytes = 0
        self._reset_pending = False
        self.generation += 1

    def reset(self) -> None:
        """Force an epoch turn (testing hook; publish triggers its own)."""
        with self._lock:
            self._reset_locked()

    def close(self) -> None:
        """Unlink every slab and refuse further publication (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._reset_locked()
            self._closed = True
        _LIVE_ARENAS.discard(self)


class ArenaClient:
    """Process-resident read-through view of published operands.

    One per worker process (see :func:`arena_client`); also usable
    in-process for tests.  Attachments, array views, and DiscretePDF
    wrappers are memoized by ref — the worker-resident half of the
    zero-copy contract.  All state from generations older than the
    newest one seen (per arena prefix) is dropped eagerly, and a ref
    *older* than that generation is refused with
    :class:`~repro.errors.DistributionError`: a stale ref means the
    coordinator reclaimed those bytes, and serving it would risk a
    silently wrong answer.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, object] = {}
        self._views: Dict[ArenaRef, np.ndarray] = {}
        self._pdfs: Dict[tuple, DiscretePDF] = {}
        self._gens: Dict[str, int] = {}  # arena prefix -> newest seen

    @staticmethod
    def _arena_prefix(name: str) -> str:
        return name.rsplit("-g", 1)[0]

    def _check_generation(self, name: str, gen: int) -> None:
        prefix = self._arena_prefix(name)
        seen = self._gens.get(prefix, 0)
        if gen < seen:
            raise DistributionError(
                f"stale arena ref: generation {gen} of {prefix!r} was "
                f"superseded by {seen} (the coordinator reclaimed it)"
            )
        if gen > seen:
            self._drop_arena(prefix)
            self._gens[prefix] = gen

    def _drop_arena(self, prefix: str) -> None:
        self._views = {
            r: v for r, v in self._views.items()
            if self._arena_prefix(r[0]) != prefix
        }
        self._pdfs = {
            k: p for k, p in self._pdfs.items()
            if self._arena_prefix(k[0][0]) != prefix
        }
        for name in [n for n in self._segments if
                     self._arena_prefix(n) == prefix]:
            seg = self._segments.pop(name)
            try:
                seg.close()
            except BufferError:  # pragma: no cover - a view still lives
                pass  # dropped from the memos; freed with the process

    def _attach(self, name: str, gen: int):
        seg = self._segments.get(name)
        if seg is None:
            if _shm is None:
                raise DistributionError("shared memory is not available")
            try:
                # Attaching registers the name with the resource
                # tracker exactly as creation does (until 3.13's
                # ``track=False``).  Workers are spawn children that
                # *share* the coordinator's tracker process, and its
                # per-type cache is a set — so the attach registration
                # is an idempotent no-op, and the coordinator's single
                # unlink at close leaves the tracker clean.  An
                # explicit unregister here would instead remove the
                # creator's registration out from under it.
                seg = _shm.SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise DistributionError(
                    f"arena segment {name!r} has vanished (stale ref or "
                    f"coordinator teardown)"
                ) from exc
            try:
                magic, header_gen = _HEADER.unpack(
                    bytes(seg.buf[:HEADER_BYTES])
                )
            except struct.error as exc:  # pragma: no cover - tiny segment
                seg.close()
                raise DistributionError(
                    f"arena segment {name!r} is too small for its header"
                ) from exc
            if magic != _MAGIC or header_gen != gen:
                seg.close()
                raise DistributionError(
                    f"arena segment {name!r} failed validation: header "
                    f"{(magic, header_gen)!r} does not match the ref "
                    f"generation {gen} (corrupt or stale arena)"
                )
            self._segments[name] = seg
        return seg

    def view(self, ref: ArenaRef) -> np.ndarray:
        """Read-only float64 view over the referenced bytes (zero copy)."""
        arr = self._views.get(ref)
        if arr is not None:
            return arr
        name, gen, off, n = ref
        self._check_generation(name, gen)
        seg = self._attach(name, gen)
        if off < HEADER_BYTES or off + 8 * n > len(seg.buf):
            raise DistributionError(
                f"arena ref {ref!r} is out of bounds for segment "
                f"{name!r} ({len(seg.buf)} bytes)"
            )
        arr = np.frombuffer(seg.buf, dtype=np.float64, count=n, offset=off)
        arr.flags.writeable = False
        self._views[ref] = arr
        return arr

    def pdf(self, dt: float, offset: int, ref: ArenaRef) -> DiscretePDF:
        """Zero-copy :class:`DiscretePDF` over an arena view.

        Memoized per ``(ref, dt, offset)`` so per-instance numeric
        memos (``_unit_cdf`` above all) survive across batches — the
        worker-resident mirror of the coordinator's cache locality.
        """
        key = (ref, dt, offset)
        pdf = self._pdfs.get(key)
        if pdf is None:
            pdf = DiscretePDF._from_view(dt, offset, self.view(ref))
            self._pdfs[key] = pdf
        return pdf

    def clear(self) -> None:
        """Drop every attachment and memo (testing hook)."""
        self._views = {}
        self._pdfs = {}
        self._gens = {}
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover
                pass
        self._segments = {}


_CLIENT: Optional[ArenaClient] = None


def arena_client() -> ArenaClient:
    """The process-wide :class:`ArenaClient` (one per worker process)."""
    global _CLIENT
    if _CLIENT is None:
        _CLIENT = ArenaClient()
    return _CLIENT


def live_arena_stats() -> dict:
    """Aggregate accounting over this process's live arenas.

    Served verbatim under ``/stats``'s ``arena`` key, so operators of
    a long-lived service can watch shared-memory residency the same
    way they watch the cache budget.  ``detail`` lists each arena's
    current epoch: a generation that keeps climbing while ``bytes``
    stays bounded is the retire-on-publish contract working; a
    generation pinned at 1 with growing bytes is a preload-heavy
    deployment that has never turned an epoch.
    """
    arenas = list(_LIVE_ARENAS)
    return {
        "arenas": len(arenas),
        "segments": sum(len(a.segment_names) for a in arenas),
        "bytes": sum(a.live_bytes for a in arenas),
        "detail": [
            {
                "generation": a.generation,
                "segments": len(a.segment_names),
                "bytes": a.live_bytes,
            }
            for a in arenas
        ],
    }


def unlink_all_arenas() -> None:
    """Close (and unlink) every live arena.  Idempotent; wired into
    ``atexit`` here and into the service's SIGTERM drain, so named
    segments never outlive the coordinating process."""
    for arena in list(_LIVE_ARENAS):
        arena.close()


atexit.register(unlink_all_arenas)
