"""Command-line interface.

``repro-ssta`` exposes the library's main entry points::

    repro-ssta analyze c432               # SSTA + STA + MC summary
    repro-ssta optimize c432 -n 25        # statistical sizing run
    repro-ssta table1 --suite c432 c880   # regenerate Table 1
    repro-ssta table2 --suite c432        # regenerate Table 2
    repro-ssta figure1 c432               # wall-of-criticality data
    repro-ssta figure2 c432               # CDF perturbation data
    repro-ssta figure10 c3540             # area-delay curves
    repro-ssta bench path/to/file.bench   # analyze a real .bench file
    repro-ssta serve --port 8731          # persistent analysis service
    repro-ssta client analyze c432        # run analyses via the service

All experiment subcommands accept ``--full`` (paper-scale circuits and
iteration counts) and ``--iterations``.

The ``serve``/``client`` pair keeps circuits and the convolution-result
cache resident in one long-lived process; server-mediated results are
bitwise identical to local runs (see :mod:`repro.service`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .config import (
    DEFAULT_CONFIG,
    DEFAULT_SERVICE_HANDLER_THREADS,
    DEFAULT_SERVICE_QUEUE_DEPTH,
    DEFAULT_SERVICE_WORKERS,
    DEFAULT_TRANSPORT,
    KNOWN_BACKENDS,
    KNOWN_TRANSPORTS,
)
from .core.deterministic_sizer import DeterministicSizer
from .core.pruned_sizer import PrunedStatisticalSizer
from .dist.cache import ConvolutionCache, DEFAULT_CACHE_CAPACITY
from .experiments import (
    fast_config,
    paper_config,
    run_figure1,
    run_figure2,
    run_figure10,
    run_table1,
    run_table2,
)
from .experiments.report import format_table
from .netlist.bench import parse_bench_file, write_bench
from .netlist.benchmarks import PAPER_SUITE, load
from .timing.delay_model import DelayModel
from .timing.graph import TimingGraph
from .timing.corners import run_corners
from .timing.monte_carlo import run_monte_carlo
from .timing.ssta import run_ssta
from .timing.sta import run_sta
from .timing.yield_analysis import delay_at_yield, timing_yield, yield_curve

__all__ = ["main"]


def _experiment_config(args: argparse.Namespace):
    builder = paper_config if getattr(args, "full", False) else fast_config
    kwargs = {}
    if getattr(args, "suite", None):
        kwargs["suite"] = args.suite
    if getattr(args, "iterations", None):
        kwargs["iterations"] = args.iterations
    return builder(**kwargs)


def _analysis_config(args: argparse.Namespace):
    """Resolve the shared analysis knobs (level batching and the jobs
    plan are bitwise transparent, so the flags change cost, never
    answers)."""
    config = DEFAULT_CONFIG
    if getattr(args, "no_level_batch", False):
        config = config.with_updates(level_batch=False)
    jobs = getattr(args, "jobs", 1)
    if jobs != 1:
        config = config.with_updates(jobs=jobs)
    transport = getattr(args, "transport", None)
    if transport is not None and transport != config.transport:
        config = config.with_updates(transport=transport)
    sparse_eps = getattr(args, "sparse_eps", 0.0)
    if sparse_eps:
        config = config.with_updates(sparse_eps=sparse_eps)
    backend = getattr(args, "backend", None)
    if backend is not None and backend != config.backend:
        config = config.with_updates(backend=backend)
    return config


def _analyze_circuit(circuit, mc_samples: int, config=DEFAULT_CONFIG) -> str:
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=config)
    sta = run_sta(graph, model)
    ssta = run_ssta(graph, model, config=config)
    mc = run_monte_carlo(graph, model, n_samples=mc_samples, config=config)
    corners = run_corners(graph, model)
    return format_table(
        f"Timing summary — {circuit.name}",
        ["metric", "value"],
        [
            ("gates", circuit.n_gates),
            ("nets (nodes)", circuit.n_nets),
            ("pin arcs (edges)", circuit.n_pin_edges),
            ("logic depth", circuit.depth()),
            ("STA delay (ps)", sta.circuit_delay),
            ("SSTA mean (ps)", ssta.mean_delay()),
            ("SSTA sigma (ps)", ssta.std_delay()),
            ("SSTA 99% bound (ps)", ssta.percentile(0.99)),
            (f"MC 99% ({mc_samples} samples, ps)", mc.percentile(0.99)),
            ("corner best/typ/worst (ps)",
             f"{corners.delay_at('best'):.0f} / "
             f"{corners.delay_at('typical'):.0f} / "
             f"{corners.delay_at('worst'):.0f}"),
            ("worst-corner pessimism vs 99% (%)",
             100.0 * corners.pessimism_vs(ssta.percentile(0.99))),
        ],
    )


def cmd_analyze(args: argparse.Namespace) -> int:
    print(_analyze_circuit(load(args.circuit, scale=args.scale),
                           args.mc_samples, _analysis_config(args)))
    return 0


def cmd_bench_file(args: argparse.Namespace) -> int:
    print(_analyze_circuit(parse_bench_file(args.path), args.mc_samples,
                           _analysis_config(args)))
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    circuit = load(args.circuit, scale=args.scale)
    sizer_cls = DeterministicSizer if args.deterministic else PrunedStatisticalSizer
    config = _analysis_config(args)
    rows = []
    cache_path = None
    if args.cache_file and args.deterministic:
        # The deterministic baseline never touches the statistical
        # kernels, so there is nothing to snapshot; dropping the
        # explicitly requested knob silently would be a no-op the
        # user only discovers later.
        raise SystemExit(
            "--cache-file has no effect with --deterministic"
        )
    if args.cache_file and not args.cache:
        # An explicit --cache 0 promises an uncached run; silently
        # re-enabling the cache to honor the snapshot would corrupt
        # benchmarks. Make the contradiction loud instead.
        raise SystemExit(
            "--cache-file needs the result cache: drop --cache 0 "
            "or the --cache-file option"
        )
    if args.cache_file:
        # Persistent cross-run warm start: entries are content-keyed
        # (fingerprints of the operand mass vectors), so a snapshot
        # from an earlier run of the same circuit family replays its
        # kernel results bitwise instead of recomputing them.
        from pathlib import Path

        cache_path = Path(args.cache_file)
        if cache_path.exists():
            cache_obj = ConvolutionCache.load(cache_path, capacity=args.cache)
            rows.append(("cache entries loaded", len(cache_obj)))
            if config.jobs > 1:
                # Route the snapshot through the operand arena: loaded
                # results are the warm run's first operands, so
                # publishing them now means parallel shards reference
                # them as index tuples from level one instead of
                # re-pickling the snapshot's vectors into every
                # worker.  Purely a transport optimization — hit rate
                # and results are jobs- and transport-invariant.
                from .exec import get_executor

                executor = get_executor(config.jobs, config.transport)
                preload = getattr(executor, "preload_operands", None)
                if preload is not None:
                    preloaded = preload(cache_obj.content_arrays())
                    if preloaded:
                        rows.append(("cache entries preloaded", preloaded))
        else:
            cache_obj = ConvolutionCache(args.cache)
        config = config.with_updates(cache=cache_obj)
    elif args.cache and not args.deterministic:
        # The result cache changes cost, never answers (hits are
        # bitwise); the hit rate row makes the saved work visible.
        config = config.with_updates(cache=args.cache)
    try:
        result = sizer_cls(circuit, config=config, max_iterations=args.iterations).run()
    finally:
        # Snapshot even when the run raises: entries are content-keyed
        # and hits replay bitwise, so a crashed run's partial warm
        # state still shortens the next attempt.
        if cache_path is not None:
            saved = config.cache.save(cache_path)
    if config.cache is not None:
        rows.append(("cache hit rate", result.cache_hit_rate))
    if cache_path is not None:
        rows.append(("cache entries saved", saved))
    print(
        format_table(
            f"{result.optimizer} sizing — {circuit.name}",
            ["metric", "value"],
            [
                ("iterations", result.n_iterations),
                ("stop reason", result.stop_reason),
                (f"initial {result.objective_name} (ps)", result.initial_objective),
                (f"final {result.objective_name} (ps)", result.final_objective),
                ("improvement (%)", result.improvement_percent),
                ("size increase (%)", result.size_increase_percent),
                ("total time (s)", result.total_time_s),
            ]
            + rows,
        )
    )
    return 0


def cmd_yield(args: argparse.Namespace) -> int:
    circuit = load(args.circuit, scale=args.scale)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit)
    sink = run_ssta(graph, model).sink_pdf
    rows = []
    if args.target is not None:
        rows.append((f"yield at {args.target:g} ps", timing_yield(sink, args.target)))
    for y in (0.50, 0.90, 0.95, 0.99):
        rows.append((f"delay at {100 * y:g}% yield (ps)", delay_at_yield(sink, y)))
    print(format_table(f"Timing yield — {circuit.name}", ["metric", "value"], rows))
    targets, yields = yield_curve(sink, n_points=12)
    print()
    print(format_table(
        "yield curve",
        ["target (ps)", "yield"],
        [(float(t_), float(yy)) for t_, yy in zip(targets, yields)],
    ))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    circuit = load(args.circuit, scale=args.scale)
    text = write_bench(circuit)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {circuit.name} ({circuit.n_gates} gates) to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceState, serve

    budget = None
    if args.cache_budget_mb is not None:
        budget = int(args.cache_budget_mb * 1024 * 1024)
    if args.workers > 1:
        # Pre-fork front: N worker processes behind one SO_REUSEPORT
        # port, each a complete bounded-admission service; the parent
        # supervises, respawns, and reconciles snapshots.
        from .service import ServiceFrontend, WorkerSpec

        spec = WorkerSpec(
            config=_analysis_config(args),
            cache_capacity=args.cache,
            cache_file=args.cache_file,
            cache_budget_bytes=budget,
            ttl_s=args.circuit_ttl,
            session_ttl_s=args.session_ttl,
            max_resident=args.max_resident,
            handler_threads=args.handler_threads,
            queue_depth=args.queue_depth,
            flush_interval_s=args.flush_interval,
            quiet=not args.verbose,
        )
        front = ServiceFrontend(
            spec, host=args.host, port=args.port, workers=args.workers
        )
        front.start()
        # Announce only once every worker is accepting: scripts that
        # gate on this line (the CI smoke does) get a ready service.
        front.wait_until_ready()
        print(
            f"repro-ssta service listening on {front.url} "
            f"({args.workers} workers)",
            flush=True,
        )
        return front.run()
    state = ServiceState(
        config=_analysis_config(args),
        cache=args.cache,
        cache_file=args.cache_file,
        ttl_s=args.circuit_ttl,
        session_ttl_s=args.session_ttl,
        max_resident=args.max_resident,
        cache_budget_bytes=budget,
    )

    def _ready(server) -> None:
        print(f"repro-ssta service listening on {server.url}", flush=True)
        if state.loaded_entries:
            print(
                f"warm-started {state.loaded_entries} cache entries "
                f"from {state.cache_file}",
                flush=True,
            )

    return serve(
        state,
        args.host,
        args.port,
        flush_interval_s=args.flush_interval,
        quiet=not args.verbose,
        ready_callback=_ready,
        handler_threads=args.handler_threads,
        queue_depth=args.queue_depth,
    )


def cmd_client(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(
        args.url,
        timeout_s=args.timeout,
        max_retries=args.retries,
        total_deadline_s=args.deadline,
    )
    client.health()  # also checks the protocol version
    return args.client_func(client, args)


def _client_analyze(client, args: argparse.Namespace) -> int:
    rep = client.analyze(args.circuit, scale=args.scale)
    rows = [
        ("gates", rep.gates),
        ("STA delay (ps)", rep.sta_delay),
        ("SSTA mean (ps)", rep.mean),
        ("SSTA sigma (ps)", rep.std),
    ]
    rows += [
        (f"SSTA {100 * p:g}% bound (ps)", v) for p, v in rep.percentiles
    ]
    hits = rep.kernel.get("cache_hits", 0)
    requests = rep.kernel.get("requests", 0)
    rows.append(("server cache hit rate",
                 hits / requests if requests else 0.0))
    print(format_table(
        f"Timing summary (service) — {rep.circuit}",
        ["metric", "value"], rows,
    ))
    return 0


def _client_optimize(client, args: argparse.Namespace) -> int:
    rep = client.optimize(
        args.circuit,
        iterations=args.iterations,
        scale=args.scale,
        sizer=args.sizer,
    )
    result = rep.result
    print(format_table(
        f"{result.optimizer} sizing (service) — {rep.circuit}",
        ["metric", "value"],
        [
            ("iterations", result.n_iterations),
            ("stop reason", result.stop_reason),
            (f"initial {result.objective_name} (ps)",
             result.initial_objective),
            (f"final {result.objective_name} (ps)",
             result.final_objective),
            ("improvement (%)", result.improvement_percent),
            ("size increase (%)", result.size_increase_percent),
            ("total time (s)", result.total_time_s),
            ("server cache hit rate", rep.cache_hit_rate),
        ],
    ))
    return 0


def _client_yield(client, args: argparse.Namespace) -> int:
    rep = client.yield_query(args.circuit, scale=args.scale,
                             target=args.target)
    rows = []
    if rep.yield_at_target is not None:
        rows.append((f"yield at {args.target:g} ps", rep.yield_at_target))
    rows += [
        (f"delay at {100 * y:g}% yield (ps)", d)
        for y, d in rep.delay_at_yield
    ]
    print(format_table(
        f"Timing yield (service) — {rep.circuit}",
        ["metric", "value"], rows,
    ))
    print()
    print(format_table(
        "yield curve", ["target (ps)", "yield"],
        [(t, y) for t, y in rep.yield_curve],
    ))
    return 0


def _client_stats(client, args: argparse.Namespace) -> int:
    stats = client.stats()
    cache = stats["cache"]
    rows = [
        ("uptime (s)", stats["uptime_s"]),
        ("cache entries", cache["entries"]),
        ("cache capacity", cache["capacity"]),
        ("cache approx bytes", cache["approx_bytes"]),
        ("cache hits", cache["hits"]),
        ("cache misses", cache["misses"]),
        ("cache evictions", cache["evictions"]),
        ("cache hit rate", cache["hit_rate"]),
        ("entries from snapshot", cache["loaded_from_snapshot"]),
        ("open sessions", len(stats["sessions"])),
        ("resident circuits", len(stats["resident_circuits"])),
    ]
    overload = stats.get("overload")
    if overload:
        rows += [
            ("requests accepted", overload["accepted"]),
            ("requests rejected (503)", overload["rejected"]),
            ("requests completed", overload["completed"]),
            ("queue depth / limit",
             f'{overload["queued"]} / {overload["queue_limit"]}'),
            ("handler threads", overload["handler_threads"]),
            ("queue wait p99 (ms)", overload["queue_wait_p99_ms"]),
        ]
    print(format_table("Service statistics", ["metric", "value"], rows))
    latency = stats.get("requests", {})
    if latency:
        print()
        print(format_table(
            "request latency",
            ["endpoint", "count", "p50 (ms)", "p99 (ms)"],
            [
                (ep, m["count"], m["p50_ms"], m["p99_ms"])
                for ep, m in sorted(latency.items())
            ],
        ))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    print(run_table1(_experiment_config(args)).render())
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    print(run_table2(_experiment_config(args)).render())
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    print(run_figure1(args.circuit, _experiment_config(args)).render())
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    print(run_figure2(args.circuit, _experiment_config(args)).render())
    return 0


def cmd_figure10(args: argparse.Namespace) -> int:
    print(run_figure10(args.circuit, _experiment_config(args)).render())
    return 0


def _add_experiment_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--full", action="store_true",
                        help="paper-scale circuits and iteration counts")
    parser.add_argument("--iterations", type=int, default=None,
                        help="sizing iterations per optimizer run")


def _add_level_batch_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-level-batch", action="store_true",
                        help="propagate node by node instead of batching "
                             "each topological level through one kernel "
                             "dispatch (bitwise-identical results; the "
                             "sequential mode exists for differential "
                             "testing and timing comparisons)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes sharding each level's "
                             "kernel batches (1 = in-process; parallel "
                             "results are bitwise identical to serial — "
                             "the knob changes wall-clock cost only)")
    parser.add_argument("--transport", choices=list(KNOWN_TRANSPORTS),
                        default=DEFAULT_TRANSPORT, metavar="T",
                        help="operand transport for --jobs > 1: 'shm' "
                             "(default) publishes operands once into a "
                             "shared-memory arena and ships index "
                             "tuples; 'pickle' ships full vectors per "
                             "shard (escape hatch for platforms "
                             "without POSIX shared memory; results are "
                             "bitwise identical either way)")
    parser.add_argument("--sparse-eps", type=float, default=0.0,
                        metavar="EPS",
                        help="store propagated arrivals in threshold-"
                             "masked sparse form, dropping at most EPS "
                             "total mass per node (0 = dense storage, "
                             "the default; the memory knob for 10^5+ "
                             "gate netlists — answers shift by a total-"
                             "variation budget linear in depth, <=1e-12 "
                             "at the golden sinks for EPS=1e-16)")
    parser.add_argument("--backend", choices=list(KNOWN_BACKENDS),
                        default=None, metavar="B",
                        help="convolution backend: 'auto' (default) "
                             "dispatches direct/fft by operand size; "
                             "'compiled' / 'compiled-auto' run the "
                             "compiled kernel tier (numba or a C "
                             "library built on first use; degrades to "
                             "the pure-NumPy direct numerics with a "
                             "warning when neither is available)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ssta",
        description="Statistical timing based optimization using gate sizing "
        "(DATE 2005 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="STA/SSTA/MC summary of a benchmark")
    p.add_argument("circuit", choices=PAPER_SUITE + ["c17"])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--mc-samples", type=int, default=4000)
    _add_level_batch_flag(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("bench", help="analyze an external .bench netlist")
    p.add_argument("path")
    p.add_argument("--mc-samples", type=int, default=4000)
    _add_level_batch_flag(p)
    p.set_defaults(func=cmd_bench_file)

    p = sub.add_parser("optimize", help="run a sizing optimization")
    p.add_argument("circuit", choices=PAPER_SUITE + ["c17"])
    p.add_argument("-n", "--iterations", type=int, default=25)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--cache", type=int, default=DEFAULT_CACHE_CAPACITY,
                   metavar="ENTRIES",
                   help="convolution-result cache capacity for the "
                        "statistical sizer (0 disables; results are "
                        "bitwise identical either way)")
    p.add_argument("--cache-file", default=None, metavar="PATH",
                   help="persistent cache snapshot: load it if it "
                        "exists (warm-starting this run bitwise), and "
                        "save the cache back to it afterwards. The "
                        "file is a pickle — load only snapshots you "
                        "wrote yourself")
    p.add_argument("--deterministic", action="store_true",
                   help="use the deterministic baseline instead")
    _add_level_batch_flag(p)
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("yield", help="timing-yield queries on a benchmark")
    p.add_argument("circuit", choices=PAPER_SUITE + ["c17"])
    p.add_argument("--target", type=float, default=None,
                   help="delay target (ps) to evaluate yield at")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_yield)

    p = sub.add_parser("export", help="write a benchmark as .bench text")
    p.add_argument("circuit", choices=PAPER_SUITE + ["c17"])
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser(
        "serve",
        help="run the persistent analysis service (see repro.service)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8731,
                   help="TCP port (0 picks a free one; the resolved "
                        "URL is printed at startup)")
    p.add_argument("--cache", type=int, default=DEFAULT_CACHE_CAPACITY,
                   metavar="ENTRIES",
                   help="capacity of the process-wide shared "
                        "convolution-result cache")
    p.add_argument("--cache-file", default=None, metavar="PATH",
                   help="persistent snapshot: warm-start from it if it "
                        "exists, flush back periodically and on "
                        "shutdown (pickle — load only snapshots you "
                        "wrote yourself)")
    p.add_argument("--cache-budget-mb", type=float, default=None,
                   metavar="MB",
                   help="approximate memory budget for the shared "
                        "cache; trimmed LRU-first after each request")
    p.add_argument("--flush-interval", type=float, default=300.0,
                   metavar="SECONDS",
                   help="periodic snapshot flush interval "
                        "(0 disables; shutdown still flushes)")
    p.add_argument("--max-resident", type=int, default=32,
                   help="resident (circuit, config) entries kept "
                        "loaded, LRU-evicted beyond this")
    p.add_argument("--circuit-ttl", type=float, default=3600.0,
                   metavar="SECONDS",
                   help="idle time before a resident circuit is "
                        "dropped")
    p.add_argument("--session-ttl", type=float, default=3600.0,
                   metavar="SECONDS",
                   help="idle time before a session is dropped")
    p.add_argument("--workers", type=int, default=DEFAULT_SERVICE_WORKERS,
                   help="worker processes behind the port (>1 uses the "
                        "SO_REUSEPORT pre-fork front with parent-side "
                        "snapshot reconciliation)")
    p.add_argument("--handler-threads", type=int,
                   default=DEFAULT_SERVICE_HANDLER_THREADS,
                   help="fixed handler threads per worker (the service "
                        "never spawns a thread per request)")
    p.add_argument("--queue-depth", type=int,
                   default=DEFAULT_SERVICE_QUEUE_DEPTH,
                   help="bounded admission queue per worker; requests "
                        "beyond it are rejected fast with 503 + "
                        "Retry-After")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request")
    _add_level_batch_flag(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client",
        help="run analyses through a repro-ssta service",
    )
    p.add_argument("--url", default="http://127.0.0.1:8731",
                   help="service base URL")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-request timeout (s)")
    p.add_argument("--retries", type=int, default=3,
                   help="retry budget for overload rejections (503 + "
                        "Retry-After, retried for every verb) and for "
                        "transport failures (idempotent verbs only — "
                        "never a blind optimize resend)")
    p.add_argument("--deadline", type=float, default=120.0,
                   help="total wall-clock budget (s) across all retry "
                        "attempts of one request")
    csub = p.add_subparsers(dest="client_command", required=True)

    c = csub.add_parser("analyze", help="SSTA + STA via the service")
    c.add_argument("circuit", choices=PAPER_SUITE + ["c17"])
    c.add_argument("--scale", type=float, default=1.0)
    c.set_defaults(func=cmd_client, client_func=_client_analyze)

    c = csub.add_parser("optimize", help="sizing run via the service")
    c.add_argument("circuit", choices=PAPER_SUITE + ["c17"])
    c.add_argument("-n", "--iterations", type=int, default=25)
    c.add_argument("--scale", type=float, default=1.0)
    c.add_argument("--sizer", default="pruned",
                   choices=["pruned", "heuristic", "brute",
                            "deterministic"])
    c.set_defaults(func=cmd_client, client_func=_client_optimize)

    c = csub.add_parser("yield", help="yield queries via the service")
    c.add_argument("circuit", choices=PAPER_SUITE + ["c17"])
    c.add_argument("--target", type=float, default=None)
    c.add_argument("--scale", type=float, default=1.0)
    c.set_defaults(func=cmd_client, client_func=_client_yield)

    c = csub.add_parser("stats", help="cache/session/latency report")
    c.set_defaults(func=cmd_client, client_func=_client_stats)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--suite", nargs="+", choices=PAPER_SUITE, default=None)
    _add_experiment_flags(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("table2", help="regenerate Table 2")
    p.add_argument("--suite", nargs="+", choices=PAPER_SUITE, default=None)
    _add_experiment_flags(p)
    p.set_defaults(func=cmd_table2)

    for name, func, default in (
        ("figure1", cmd_figure1, "c432"),
        ("figure2", cmd_figure2, "c432"),
        ("figure10", cmd_figure10, "c3540"),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("circuit", nargs="?", default=default, choices=PAPER_SUITE)
        _add_experiment_flags(p)
        p.set_defaults(func=func)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
