"""Width bookkeeping for continuous gate sizing.

The optimizers treat gate width as a continuous variable starting at the
minimum size (``w = 1``), incremented by a fixed ``dw`` each time a gate
is selected (the paper's coordinate descent, Figure 6 step 22).  This
module centralizes the width bounds and the circuit-level size metrics
the paper reports (column 3 of Table 1: "% increase in the total gate
size of the circuit due to optimization").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizationError

__all__ = ["SizingLimits", "total_gate_size", "total_area", "size_increase_percent"]


@dataclass(frozen=True)
class SizingLimits:
    """Bounds on any single gate's width factor.

    ``w_min = 1`` is the library minimum size; ``w_max`` caps the
    up-sizing so the coordinate descent cannot chase a single gate
    forever (commercial libraries top out around 16-32x drive).
    """

    w_min: float = 1.0
    w_max: float = 16.0

    def __post_init__(self) -> None:
        if self.w_min <= 0.0:
            raise OptimizationError(f"w_min must be positive, got {self.w_min}")
        if self.w_max < self.w_min:
            raise OptimizationError(
                f"w_max ({self.w_max}) must be >= w_min ({self.w_min})"
            )

    def clamp(self, width: float) -> float:
        """Clamp ``width`` into ``[w_min, w_max]``."""
        return min(max(width, self.w_min), self.w_max)

    def can_upsize(self, width: float, dw: float) -> bool:
        """True when a ``+dw`` move stays within bounds."""
        return width + dw <= self.w_max + 1e-12


def total_gate_size(circuit) -> float:
    """Sum of gate width factors — the paper's "total gate size"."""
    return float(sum(g.width for g in circuit.gates()))


def total_area(circuit) -> float:
    """Sum of instance areas (width times cell area)."""
    return float(sum(g.cell.area_at(g.width) for g in circuit.gates()))


def size_increase_percent(initial_size: float, final_size: float) -> float:
    """Percentage increase of total gate size (Table 1, column 3)."""
    if initial_size <= 0.0:
        raise OptimizationError("initial size must be positive")
    return 100.0 * (final_size - initial_size) / initial_size
