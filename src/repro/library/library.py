"""Cell libraries and the default 180nm-like characterization.

The paper synthesizes ISCAS'85 circuits onto a commercial 180nm
standard-cell library.  That library is not redistributable, so
:func:`default_library` provides an equivalent characterized from
published logical-effort theory (Sutherland/Sproull/Harris): per-cell
``K`` equals the process time constant ``tau`` scaled by the cell's
logical effort, and ``Dint`` equals ``tau`` scaled by its parasitic
delay.  For a 180nm process ``tau`` is about 25 ps, which puts minimum
size NAND2 delays near 100 ps under typical loads — consistent with the
paper's multi-nanosecond circuit delays over 20-50 logic levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from ..errors import LibraryError
from .cell import CellType

__all__ = ["CellLibrary", "default_library", "TAU_180NM"]

#: Process time constant (ps) used to characterize the default library.
TAU_180NM: float = 25.0

#: Input pin capacitance (fF) of a unit-width inverter in the default
#: library; every other cell's capacitances are expressed relative to it
#: through its logical effort.
_C_UNIT: float = 2.0


@dataclass
class CellLibrary:
    """A named collection of :class:`CellType` with lookup helpers.

    Besides cells, a library carries the two extrinsic load parameters
    used when building timing graphs:

    * ``wire_cap_per_fanout`` — lumped interconnect capacitance (fF)
      added to a driver's load for each fan-out pin it drives, and
    * ``primary_output_cap`` — the fixed load (fF) seen by nets that
      leave the block.
    """

    name: str
    wire_cap_per_fanout: float = 1.0
    primary_output_cap: float = 6.0
    _cells: Dict[str, CellType] = field(default_factory=dict)
    _by_function: Dict[tuple, List[CellType]] = field(default_factory=dict)

    def add(self, cell: CellType) -> None:
        """Register a cell; duplicate names are an error."""
        if cell.name in self._cells:
            raise LibraryError(f"duplicate cell name: {cell.name}")
        self._cells[cell.name] = cell
        self._by_function.setdefault((cell.function, cell.n_inputs), []).append(cell)

    def get(self, name: str) -> CellType:
        """Fetch a cell by library name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(
                f"cell {name!r} not in library {self.name!r}; "
                f"available: {sorted(self._cells)}"
            ) from None

    def find(self, function: str, n_inputs: int) -> CellType:
        """Fetch the first cell implementing ``function`` with
        ``n_inputs`` pins (the mapping used by the ``.bench`` reader)."""
        key = (function.upper(), n_inputs)
        cells = self._by_function.get(key)
        if not cells:
            raise LibraryError(
                f"no {function}/{n_inputs} cell in library {self.name!r}"
            )
        return cells[0]

    def has(self, function: str, n_inputs: int) -> bool:
        """True when a ``function``/``n_inputs`` cell exists."""
        return (function.upper(), n_inputs) in self._by_function

    def cells(self) -> Iterator[CellType]:
        """Iterate over all cells in registration order."""
        return iter(self._cells.values())

    def functions(self) -> List[str]:
        """Sorted list of distinct logic functions available."""
        return sorted({c.function for c in self._cells.values()})

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, name: str) -> bool:
        return name in self._cells


def _cell(
    name: str,
    function: str,
    n_inputs: int,
    logical_effort: float,
    parasitic: float,
    *,
    tau: float,
    area: float,
) -> CellType:
    """Build a cell from logical-effort parameters.

    ``K = tau`` (delay per unit electrical effort once normalized by the
    cell's own capacitance) and the logical effort is folded into the
    input/cell capacitance: a gate with logical effort ``g`` presents
    ``g`` times the inverter's input capacitance per pin at equal drive.
    """
    pin_cap = _C_UNIT * logical_effort
    return CellType(
        name=name,
        function=function.upper(),
        n_inputs=n_inputs,
        intrinsic_delay=tau * parasitic,
        drive_k=tau,
        input_cap=pin_cap,
        cell_cap=pin_cap * n_inputs,
        area=area,
    )


def default_library(*, tau: float = TAU_180NM, name: str = "generic180") -> CellLibrary:
    """The library used by every experiment in this reproduction.

    Logical efforts and parasitic delays follow the standard CMOS
    values (beta = 2): inverter ``g = 1, p = 1``; NANDn
    ``g = (n + 2) / 3, p = n``; NORn ``g = (2n + 1) / 3, p = n``;
    composite AND/OR cells add an output inverter stage folded into
    ``Dint``; XOR/XNOR use the two-level static CMOS values.
    """
    lib = CellLibrary(name=name)
    add = lib.add
    add(_cell("INV_X1", "NOT", 1, 1.0, 1.0, tau=tau, area=1.0))
    add(_cell("BUF_X1", "BUF", 1, 1.0, 2.0, tau=tau, area=1.5))
    for n in (2, 3, 4):
        add(_cell(f"NAND{n}_X1", "NAND", n, (n + 2.0) / 3.0, float(n),
                  tau=tau, area=1.0 + 0.5 * n))
        add(_cell(f"NOR{n}_X1", "NOR", n, (2.0 * n + 1.0) / 3.0, float(n),
                  tau=tau, area=1.0 + 0.6 * n))
        # AND/OR are NAND/NOR plus an inverter: slightly higher logical
        # effort and roughly one inverter's worth of extra parasitic.
        add(_cell(f"AND{n}_X1", "AND", n, (n + 2.0) / 3.0 * 1.2, n + 1.0,
                  tau=tau, area=1.5 + 0.5 * n))
        add(_cell(f"OR{n}_X1", "OR", n, (2.0 * n + 1.0) / 3.0 * 1.2, n + 1.0,
                  tau=tau, area=1.5 + 0.6 * n))
    add(_cell("XOR2_X1", "XOR", 2, 4.0, 4.0, tau=tau, area=3.0))
    add(_cell("XNOR2_X1", "XNOR", 2, 4.0, 4.0, tau=tau, area=3.0))
    return lib
