"""Standard-cell library: logical-effort cells, the default 180nm-like
characterization, and continuous-sizing bookkeeping."""

from .cell import CellType
from .library import TAU_180NM, CellLibrary, default_library
from .sizing import SizingLimits, size_increase_percent, total_area, total_gate_size

__all__ = [
    "CellType",
    "CellLibrary",
    "default_library",
    "TAU_180NM",
    "SizingLimits",
    "total_gate_size",
    "total_area",
    "size_increase_percent",
]
