"""Standard-cell types under the logical-effort delay model.

The paper (Section 2.1) uses a logic-effort style pin-to-pin delay:

    De = Dint + K * Cload / Ccell                              (EQ 1)

where ``Dint`` is a constant intrinsic delay from cell-internal
capacitance, ``Cload`` the total load capacitance at the output,
``K`` a per-cell constant, and ``Ccell`` the total capacitance of the
cell.  Continuous *gate sizing* scales a cell instance by a width
factor ``w`` (``w = 1`` is minimum size): the cell capacitance — and
therefore its drive strength and its input pin capacitance — scale
linearly with ``w``, so up-sizing a gate speeds the gate itself while
loading its fan-in gates more heavily.  That tension is exactly what a
sizing optimizer negotiates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LibraryError

__all__ = ["CellType"]


@dataclass(frozen=True)
class CellType:
    """An un-sized standard cell characterized for EQ 1.

    Attributes
    ----------
    name:
        Library name, e.g. ``"NAND2_X1"`` — unique within a library.
    function:
        Logic function tag (``"NAND"``, ``"NOR"``, ``"AND"``, ``"OR"``,
        ``"XOR"``, ``"XNOR"``, ``"NOT"``, ``"BUF"``); used by the
        ``.bench`` reader/writer and by functional checks.
    n_inputs:
        Number of input pins.
    intrinsic_delay:
        ``Dint`` in picoseconds at any size (intrinsic delay is
        size-independent under logical effort: internal capacitance and
        drive scale together).
    drive_k:
        ``K`` in picoseconds: the slope of delay versus the electrical
        effort ``Cload / Ccell``.
    input_cap:
        Capacitance (fF) presented by one input pin *at unit width*;
        a pin of an instance with width ``w`` presents ``w * input_cap``.
    cell_cap:
        Total cell capacitance ``Ccell`` (fF) *at unit width*.
    area:
        Layout area (arbitrary units) at unit width; instance area is
        ``w * area``.  The paper's "total gate size" metric is the sum
        of instance widths, which we also track separately.
    """

    name: str
    function: str
    n_inputs: int
    intrinsic_delay: float
    drive_k: float
    input_cap: float
    cell_cap: float
    area: float = 1.0

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise LibraryError(f"{self.name}: n_inputs must be >= 1")
        if self.intrinsic_delay < 0.0:
            raise LibraryError(f"{self.name}: intrinsic_delay must be >= 0")
        if self.drive_k <= 0.0:
            raise LibraryError(f"{self.name}: drive_k must be > 0")
        if self.input_cap <= 0.0:
            raise LibraryError(f"{self.name}: input_cap must be > 0")
        if self.cell_cap <= 0.0:
            raise LibraryError(f"{self.name}: cell_cap must be > 0")
        if self.area <= 0.0:
            raise LibraryError(f"{self.name}: area must be > 0")

    # ------------------------------------------------------------------
    # Size-dependent electrical quantities
    # ------------------------------------------------------------------
    def input_cap_at(self, width: float) -> float:
        """Capacitance (fF) of one input pin at width ``width``."""
        return width * self.input_cap

    def cell_cap_at(self, width: float) -> float:
        """Total cell capacitance ``Ccell`` (fF) at width ``width``."""
        return width * self.cell_cap

    def area_at(self, width: float) -> float:
        """Layout area at width ``width``."""
        return width * self.area

    def delay(self, width: float, load_cap: float) -> float:
        """EQ 1: nominal pin-to-pin delay (ps) at ``width`` driving
        ``load_cap`` fF."""
        if width <= 0.0:
            raise LibraryError(f"{self.name}: width must be positive, got {width}")
        if load_cap < 0.0:
            raise LibraryError(f"{self.name}: load_cap must be >= 0, got {load_cap}")
        return self.intrinsic_delay + self.drive_k * load_cap / self.cell_cap_at(width)

    def delay_derivative_width(self, width: float, load_cap: float) -> float:
        """Analytic d(De)/d(width) at constant load.

        Always negative: up-sizing a cell at fixed load always speeds
        it.  Used by sanity tests and by the first-order sensitivity
        screen in the optimizer documentation examples.
        """
        return -self.drive_k * load_cap / (self.cell_cap * width * width)
