"""Shared infrastructure for the experiment harness.

Every table/figure experiment accepts an :class:`ExperimentConfig`.
Two presets exist:

* :func:`fast_config` — scaled-down circuits and iteration counts that
  finish on a laptop in minutes; the default for ``benchmarks/`` and
  CI.  Circuit *shapes* (fan-in mix, relative depth) are preserved by
  :meth:`repro.netlist.generate.CircuitSpec.scaled`.
* :func:`paper_config` — full-size circuits and paper-scale iteration
  counts (env ``REPRO_FULL=1`` switches the benchmark harness to it).

The scale factors below keep the *largest* circuits around a few
hundred gates in fast mode, which is where the pruned-versus-brute-
force comparisons already show the paper's qualitative behaviour.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import AnalysisConfig
from ..core.objectives import PercentileObjective
from ..core.sizer_base import SizingResult
from ..errors import OptimizationError
from ..netlist.benchmarks import PAPER_SUITE, load
from ..netlist.circuit import Circuit
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from ..timing.ssta import run_ssta

__all__ = [
    "ExperimentConfig",
    "fast_config",
    "paper_config",
    "active_config",
    "load_scaled",
    "evaluate_statistical",
    "evaluate_widths",
]

#: Per-circuit scale factors for fast mode (chosen so the biggest
#: circuits stay near ~250 gates).
_FAST_SCALES: Dict[str, float] = {
    "c432": 1.0,
    "c499": 0.5,
    "c880": 0.6,
    "c1355": 0.5,
    "c1908": 0.5,
    "c2670": 0.3,
    "c3540": 0.25,
    "c5315": 0.15,
    "c6288": 0.1,
    "c7552": 0.12,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    #: circuits to run, in table order
    suite: tuple = tuple(PAPER_SUITE)
    #: per-circuit generator scale factor (1.0 = paper size)
    scales: Dict[str, float] = field(default_factory=dict)
    #: sizing iterations per optimizer run
    iterations: int = 25
    #: analysis numerics (grid spacing etc.)
    analysis: AnalysisConfig = field(default_factory=lambda: AnalysisConfig(dt=4.0))
    #: objective percentile (paper: 0.99)
    percentile: float = 0.99
    #: Monte Carlo sample count for validation experiments
    mc_samples: int = 4000
    #: random seed for Monte Carlo
    mc_seed: int = 2005

    def scale_of(self, name: str) -> float:
        """Generator scale factor for a circuit (default 1.0)."""
        return self.scales.get(name, 1.0)

    def objective(self) -> PercentileObjective:
        """The experiment's objective functional."""
        return PercentileObjective(self.percentile)


def fast_config(
    *,
    suite: Optional[List[str]] = None,
    iterations: int = 25,
) -> ExperimentConfig:
    """Laptop-scale preset (scaled circuits, short runs)."""
    chosen = tuple(suite) if suite is not None else tuple(PAPER_SUITE)
    return ExperimentConfig(
        suite=chosen,
        scales=dict(_FAST_SCALES),
        iterations=iterations,
        analysis=AnalysisConfig(dt=4.0),
    )


def paper_config(
    *,
    suite: Optional[List[str]] = None,
    iterations: int = 1000,
) -> ExperimentConfig:
    """Paper-scale preset: full-size circuits, 1000+ iterations.

    Expect hours of runtime in pure Python; use for final archival
    runs, not CI.
    """
    chosen = tuple(suite) if suite is not None else tuple(PAPER_SUITE)
    return ExperimentConfig(
        suite=chosen,
        scales={},
        iterations=iterations,
        analysis=AnalysisConfig(dt=2.0),
        mc_samples=10000,
    )


def active_config(**kwargs) -> ExperimentConfig:
    """``paper_config`` when env ``REPRO_FULL=1``, else ``fast_config``."""
    if os.environ.get("REPRO_FULL", "0") == "1":
        return paper_config(**kwargs)
    return fast_config(**kwargs)


def load_scaled(name: str, config: ExperimentConfig) -> Circuit:
    """Load a benchmark at the experiment's scale."""
    return load(name, scale=config.scale_of(name))


def evaluate_statistical(
    circuit: Circuit, config: ExperimentConfig
) -> float:
    """SSTA objective (percentile of the sink CDF) of a circuit at its
    *current* widths."""
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=config.analysis)
    return run_ssta(graph, model).percentile(config.percentile)


def evaluate_widths(
    circuit: Circuit,
    widths: Dict[str, float],
    config: ExperimentConfig,
) -> float:
    """SSTA objective of a circuit under a width snapshot (the circuit's
    own widths are restored afterwards)."""
    saved = circuit.widths()
    try:
        circuit.set_widths(widths)
        return evaluate_statistical(circuit, config)
    finally:
        circuit.set_widths(saved)
