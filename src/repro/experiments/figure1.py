"""Figure 1: the "wall of criticality" and its statistical cost.

Figure 1a sketches two path-delay distributions with the same
deterministic circuit delay — a balanced "wall" of near-critical paths
(the product of deterministic optimization) and an unbalanced one —
and Figure 1b shows the wall's circuit-delay PDF is statistically
worse.  We regenerate it quantitatively:

* size a benchmark with the deterministic optimizer and with the
  statistical optimizer at equal area;
* compute each solution's exact *path-delay histogram* (a DAG dynamic
  program — path counts by delay bin) and its near-critical path
  population (the wall metric);
* compute each solution's circuit-delay distribution via SSTA.

The paper's claim reproduces as: the deterministic solution has a
larger fraction of paths within 10% of its own maximum delay, and a
worse 99-percentile circuit delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.deterministic_sizer import DeterministicSizer
from ..core.pruned_sizer import PrunedStatisticalSizer
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from ..timing.paths import PathHistogram, path_delay_histogram, wall_metric
from ..timing.ssta import run_ssta
from .common import ExperimentConfig, active_config, load_scaled
from .report import format_series, format_table

__all__ = ["Figure1Result", "run_figure1"]


@dataclass
class Figure1Result:
    """Path histograms + delay CDFs for the two optimization styles."""

    circuit: str
    iterations: int
    margin_fraction: float
    det_histogram: PathHistogram
    stat_histogram: PathHistogram
    det_wall: float
    stat_wall: float
    det_delay_99: float
    stat_delay_99: float
    det_cdf: Tuple[np.ndarray, np.ndarray]
    stat_cdf: Tuple[np.ndarray, np.ndarray]

    @property
    def wall_ratio(self) -> float:
        """Near-critical path fraction: deterministic / statistical
        (> 1 reproduces the paper's wall narrative)."""
        if self.stat_wall <= 0.0:
            return float("inf")
        return self.det_wall / self.stat_wall

    def render(self) -> str:
        summary = format_table(
            f"Figure 1 — path-delay walls on {self.circuit} "
            f"({self.iterations} sizing moves each)",
            ["optimizer", "paths total", "near-critical frac", "99% delay (ps)"],
            [
                (
                    "deterministic",
                    self.det_histogram.total_paths,
                    self.det_wall,
                    self.det_delay_99,
                ),
                (
                    "statistical",
                    self.stat_histogram.total_paths,
                    self.stat_wall,
                    self.stat_delay_99,
                ),
            ],
        )
        hist = format_series(
            "path-delay histograms (normalized delay, path counts)",
            ["delay/Dmax (det)", "#paths (det)", "delay/Dmax (stat)", "#paths (stat)"],
            _aligned_histogram_series(self.det_histogram, self.stat_histogram),
        )
        return summary + "\n\n" + hist


def _aligned_histogram_series(
    det: PathHistogram, stat: PathHistogram, n_points: int = 20
) -> List[List[float]]:
    """Down-sample both histograms to ``n_points`` normalized-delay rows."""
    series: List[List[float]] = [[], [], [], []]
    for hist, (d_col, c_col) in ((det, (0, 1)), (stat, (2, 3))):
        delays = hist.delays / max(hist.max_delay, 1e-12)
        counts = hist.counts
        idx = np.linspace(0, delays.size - 1, n_points).astype(int)
        # Sum counts between sample points so mass is preserved.
        bounds = np.append(idx, delays.size)
        for j in range(n_points):
            series[d_col].append(float(delays[idx[j]]))
            series[c_col].append(float(counts[bounds[j] : bounds[j + 1]].sum()))
    return series


def run_figure1(
    circuit_name: str = "c432",
    config: Optional[ExperimentConfig] = None,
    *,
    margin_fraction: float = 0.10,
) -> Figure1Result:
    """Regenerate the Figure 1 comparison on one benchmark."""
    cfg = config if config is not None else active_config()
    objective = cfg.objective()

    det_circuit = load_scaled(circuit_name, cfg)
    det_result = DeterministicSizer(
        det_circuit, config=cfg.analysis, objective=objective,
        max_iterations=cfg.iterations,
    ).run()
    moves = max(1, det_result.n_iterations)

    stat_circuit = load_scaled(circuit_name, cfg)
    PrunedStatisticalSizer(
        stat_circuit, config=cfg.analysis, objective=objective,
        max_iterations=moves,
    ).run()

    results = {}
    for tag, circuit in (("det", det_circuit), ("stat", stat_circuit)):
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg.analysis)
        hist = path_delay_histogram(graph, model, bin_width=cfg.analysis.dt * 2)
        ssta = run_ssta(graph, model)
        sink = ssta.sink_pdf
        results[tag] = (hist, wall_metric(hist, margin_fraction=margin_fraction),
                        sink.percentile(cfg.percentile),
                        (sink.times, sink.cdf()))

    det_hist, det_wall, det_99, det_cdf = results["det"]
    stat_hist, stat_wall, stat_99, stat_cdf = results["stat"]
    return Figure1Result(
        circuit=circuit_name,
        iterations=moves,
        margin_fraction=margin_fraction,
        det_histogram=det_hist,
        stat_histogram=stat_hist,
        det_wall=det_wall,
        stat_wall=stat_wall,
        det_delay_99=det_99,
        stat_delay_99=stat_99,
        det_cdf=det_cdf,
        stat_cdf=stat_cdf,
    )
