"""Table 1: 99-percentile delay — deterministic vs statistical sizing.

For each benchmark the paper sizes the circuit twice from minimum size:
once with the deterministic critical-path coordinate descent and once
with the statistical (pruned) optimizer, for the same number of sizing
moves (hence the same added area, since every move adds ``dw``).  Both
solutions are then evaluated *statistically*: the deterministic run's
trajectory is replayed and re-timed with SSTA, exactly as the paper
does ("the reported 99-percentile delay point was obtained by running
SSTA on the circuit solution").

Reported columns mirror the paper: node/edge counts, % increase in
total gate size, deterministic vs statistical 99-percentile delay, and
the % improvement (paper: average 7.8%, maximum 10.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.deterministic_sizer import DeterministicSizer
from ..core.pruned_sizer import PrunedStatisticalSizer
from ..core.sizer_base import SizingResult
from .common import ExperimentConfig, active_config, evaluate_statistical, load_scaled
from .report import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1", "run_table1_circuit"]


@dataclass
class Table1Row:
    """One benchmark's line of Table 1."""

    circuit: str
    n_nodes: int
    n_edges: int
    size_increase_pct: float
    deterministic_delay: float
    statistical_delay: float

    @property
    def improvement_pct(self) -> float:
        """Column 6: statistical improvement over deterministic."""
        if self.deterministic_delay == 0.0:
            return 0.0
        return 100.0 * (
            self.deterministic_delay - self.statistical_delay
        ) / self.deterministic_delay


@dataclass
class Table1Result:
    """All rows plus the aggregate the paper quotes in the text."""

    rows: List[Table1Row]
    iterations: int

    @property
    def average_improvement_pct(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.improvement_pct for r in self.rows) / len(self.rows)

    @property
    def max_improvement_pct(self) -> float:
        if not self.rows:
            return 0.0
        return max(r.improvement_pct for r in self.rows)

    def render(self) -> str:
        table = format_table(
            f"Table 1 — 99-percentile delay (ps), {self.iterations} sizing iterations",
            ["circuit", "node/edge", "% inc", "deterministic", "statistical", "% impr."],
            [
                (
                    r.circuit,
                    f"{r.n_nodes}/{r.n_edges}",
                    r.size_increase_pct,
                    r.deterministic_delay,
                    r.statistical_delay,
                    r.improvement_pct,
                )
                for r in self.rows
            ],
        )
        return (
            table
            + f"\naverage improvement: {self.average_improvement_pct:.2f}%"
            + f"   max improvement: {self.max_improvement_pct:.2f}%"
        )


def run_table1_circuit(
    name: str, config: Optional[ExperimentConfig] = None
) -> Table1Row:
    """Run the deterministic/statistical comparison for one benchmark."""
    cfg = config if config is not None else active_config()
    objective = cfg.objective()

    det_circuit = load_scaled(name, cfg)
    det = DeterministicSizer(
        det_circuit,
        config=cfg.analysis,
        objective=objective,
        max_iterations=cfg.iterations,
    )
    det_result = det.run()
    det_delay = evaluate_statistical(det_circuit, cfg)

    # Match area: the statistical run gets exactly as many moves as the
    # deterministic one actually made.
    moves = max(1, det_result.n_iterations)
    stat_circuit = load_scaled(name, cfg)
    stat = PrunedStatisticalSizer(
        stat_circuit,
        config=cfg.analysis,
        objective=objective,
        max_iterations=moves,
    )
    stat_result = stat.run()
    stat_delay = evaluate_statistical(stat_circuit, cfg)

    return Table1Row(
        circuit=name,
        n_nodes=det_circuit.n_nets,
        n_edges=det_circuit.n_pin_edges,
        size_increase_pct=stat_result.size_increase_percent,
        deterministic_delay=det_delay,
        statistical_delay=stat_delay,
    )


def run_table1(config: Optional[ExperimentConfig] = None) -> Table1Result:
    """Regenerate Table 1 over the configured suite."""
    cfg = config if config is not None else active_config()
    rows = [run_table1_circuit(name, cfg) for name in cfg.suite]
    return Table1Result(rows=rows, iterations=cfg.iterations)
