"""Plain-text table/series rendering for experiment results.

Every experiment returns a structured result object with a
``render()`` method producing the same rows the paper prints; this
module holds the shared formatting helpers (no plotting dependencies —
figure experiments emit their *series* as aligned text, which is what
EXPERIMENTS.md records)."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Fixed-width table with a title line (paper-style)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    columns: Sequence[str],
    series: Sequence[Sequence[float]],
) -> str:
    """Aligned multi-column numeric series (figure data)."""
    if series and any(len(s) != len(series[0]) for s in series):
        raise ValueError("all series must have equal length")
    rows = list(zip(*series)) if series else []
    return format_table(title, columns, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
