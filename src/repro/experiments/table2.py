"""Table 2: runtime per sizing iteration — brute force vs pruned.

The paper reports, per benchmark: average wall-clock per iteration for
the brute-force statistical optimizer and for the accelerated
(pruning) algorithm, the improvement factor (up to 56x on c6288), the
range of per-iteration runtimes, and the range of improvement factors.
It also highlights pruning effectiveness ("as many as 55 out of 56
candidate nodes are pruned").

Wall-clock numbers are machine dependent, so alongside them we report
machine-independent *work ratios* (statistical operations performed:
convolutions + max reductions), plus the measured pruned fraction.
Both optimizers provably make identical sizing decisions, so their
iteration sequences are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.brute_force_sizer import BruteForceStatisticalSizer
from ..core.pruned_sizer import PrunedStatisticalSizer
from ..errors import OptimizationError
from .common import ExperimentConfig, active_config, load_scaled
from .report import format_table

__all__ = ["Table2Row", "Table2Result", "run_table2", "run_table2_circuit"]


@dataclass
class Table2Row:
    """One benchmark's line of Table 2."""

    circuit: str
    brute_force_s: float
    pruned_s: float
    time_range_s: Tuple[float, float]
    improvement_range: Tuple[float, float]
    pruned_fraction: float
    work_ratio: float
    selections_match: bool

    @property
    def improvement_factor(self) -> float:
        """Column 4: brute-force time / pruned time."""
        if self.pruned_s <= 0.0:
            return float("inf")
        return self.brute_force_s / self.pruned_s


@dataclass
class Table2Result:
    """All rows of the runtime comparison."""

    rows: List[Table2Row]
    iterations: int

    @property
    def max_improvement_factor(self) -> float:
        if not self.rows:
            return 0.0
        return max(r.improvement_factor for r in self.rows)

    def render(self) -> str:
        table = format_table(
            f"Table 2 — runtime per iteration (s), {self.iterations} iterations",
            [
                "circuit",
                "brute force",
                "our algo.",
                "imp. factor",
                "range of time",
                "range of impr.",
                "pruned %",
                "work ratio",
            ],
            [
                (
                    r.circuit,
                    r.brute_force_s,
                    r.pruned_s,
                    r.improvement_factor,
                    f"{r.time_range_s[0]:.3g}-{r.time_range_s[1]:.3g}",
                    f"{r.improvement_range[0]:.3g}-{r.improvement_range[1]:.3g}",
                    100.0 * r.pruned_fraction,
                    r.work_ratio,
                )
                for r in self.rows
            ],
        )
        return (
            table
            + f"\nmax improvement factor: {self.max_improvement_factor:.1f}x"
        )


def run_table2_circuit(
    name: str, config: Optional[ExperimentConfig] = None
) -> Table2Row:
    """Timed brute-force vs pruned comparison on one benchmark.

    Both optimizers start from identical copies and are run for the
    same number of iterations; selection agreement is verified so the
    timing comparison is apples-to-apples.
    """
    cfg = config if config is not None else active_config()
    objective = cfg.objective()

    bf_circuit = load_scaled(name, cfg)
    bf = BruteForceStatisticalSizer(
        bf_circuit,
        config=cfg.analysis,
        objective=objective,
        max_iterations=cfg.iterations,
    )
    bf_result = bf.run()

    pr_circuit = load_scaled(name, cfg)
    pr = PrunedStatisticalSizer(
        pr_circuit,
        config=cfg.analysis,
        objective=objective,
        max_iterations=cfg.iterations,
    )
    pr_result = pr.run()

    matches = [b.gate for b in bf_result.steps] == [p.gate for p in pr_result.steps]
    if not bf_result.steps or not pr_result.steps:
        raise OptimizationError(
            f"{name}: optimizers made no moves; increase iterations"
        )

    bf_times = [s.stats.wall_time_s for s in bf_result.steps]
    pr_times = [s.stats.wall_time_s for s in pr_result.steps]
    n = min(len(bf_times), len(pr_times))
    ratios = [bf_times[i] / max(pr_times[i], 1e-9) for i in range(n)]
    bf_ops = sum(s.stats.convolutions + s.stats.max_ops for s in bf_result.steps)
    pr_ops = sum(s.stats.convolutions + s.stats.max_ops for s in pr_result.steps)
    pruned_fractions = [s.stats.pruned_fraction for s in pr_result.steps]

    return Table2Row(
        circuit=name,
        brute_force_s=sum(bf_times) / len(bf_times),
        pruned_s=sum(pr_times) / len(pr_times),
        time_range_s=(min(pr_times), max(pr_times)),
        improvement_range=(min(ratios), max(ratios)),
        pruned_fraction=sum(pruned_fractions) / len(pruned_fractions),
        work_ratio=bf_ops / max(pr_ops, 1),
        selections_match=matches,
    )


def run_table2(config: Optional[ExperimentConfig] = None) -> Table2Result:
    """Regenerate Table 2 over the configured suite."""
    cfg = config if config is not None else active_config()
    rows = [run_table2_circuit(name, cfg) for name in cfg.suite]
    return Table2Result(rows=rows, iterations=cfg.iterations)
