"""Figure 10: area-delay trade-off curves, bound vs Monte Carlo.

The paper plots, for c3540, the total gate size against the
99-percentile circuit delay after every sizing iteration, for both the
deterministic and the statistical optimizer — each evaluated two ways:
with the SSTA bound (the optimization objective) and with Monte Carlo
(the "exact" reference).  The punchlines reproduced here:

* the statistical curve dominates the deterministic one (better delay
  at equal area), and
* the bound tracks Monte Carlo closely at the 99% point (< ~1%),
  justifying optimizing the bound.

Monte Carlo is evaluated at evenly spaced checkpoints along each
trajectory (it is the expensive axis); the SSTA bound is evaluated at
every checkpoint as well, from replayed width snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.deterministic_sizer import DeterministicSizer
from ..core.pruned_sizer import PrunedStatisticalSizer
from ..core.sizer_base import SizingResult
from ..library.sizing import total_gate_size
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from ..timing.monte_carlo import run_monte_carlo
from ..timing.ssta import run_ssta
from .common import ExperimentConfig, active_config, load_scaled
from .report import format_series

__all__ = ["TradeoffPoint", "Figure10Result", "run_figure10"]


@dataclass
class TradeoffPoint:
    """One checkpoint on an area-delay curve."""

    iteration: int
    total_size: float
    bound_delay: float
    mc_delay: float

    @property
    def bound_error_pct(self) -> float:
        """Relative gap between the SSTA bound and Monte Carlo at the
        objective percentile (paper: < 1%)."""
        if self.mc_delay == 0.0:
            return 0.0
        return 100.0 * abs(self.bound_delay - self.mc_delay) / self.mc_delay


@dataclass
class Figure10Result:
    """Both optimizers' trade-off curves with MC validation."""

    circuit: str
    percentile: float
    deterministic: List[TradeoffPoint]
    statistical: List[TradeoffPoint]

    @property
    def max_bound_error_pct(self) -> float:
        """Worst bound-vs-MC gap across every checkpoint."""
        points = self.deterministic + self.statistical
        return max((p.bound_error_pct for p in points), default=0.0)

    def statistical_dominates(self) -> bool:
        """True when, at the final matched area, the statistical curve
        achieves a better (smaller) bound delay."""
        if not self.deterministic or not self.statistical:
            return False
        return self.statistical[-1].bound_delay <= self.deterministic[-1].bound_delay

    def render(self) -> str:
        def series(points: List[TradeoffPoint]) -> List[List[float]]:
            return [
                [float(p.iteration) for p in points],
                [p.total_size for p in points],
                [p.bound_delay for p in points],
                [p.mc_delay for p in points],
            ]

        det = format_series(
            f"Figure 10 — deterministic optimization on {self.circuit}",
            ["iter", "total size", "bound 99% (ps)", "MC 99% (ps)"],
            series(self.deterministic),
        )
        stat = format_series(
            f"Figure 10 — statistical optimization on {self.circuit}",
            ["iter", "total size", "bound 99% (ps)", "MC 99% (ps)"],
            series(self.statistical),
        )
        return (
            det
            + "\n\n"
            + stat
            + f"\nmax bound-vs-MC error: {self.max_bound_error_pct:.2f}%"
            + f"\nstatistical dominates at final area: {self.statistical_dominates()}"
        )


def _checkpoints(n_steps: int, n_points: int) -> List[int]:
    if n_steps <= 0:
        return [0]
    stride = max(1, n_steps // max(1, n_points - 1))
    marks = list(range(0, n_steps, stride))
    if marks[-1] != n_steps:
        marks.append(n_steps)
    return marks


def _trace(
    circuit_name: str,
    result: SizingResult,
    cfg: ExperimentConfig,
    n_points: int,
) -> List[TradeoffPoint]:
    """Replay a sizing trajectory and evaluate bound + MC at checkpoints."""
    circuit = load_scaled(circuit_name, cfg)
    points: List[TradeoffPoint] = []
    for iteration in _checkpoints(result.n_iterations, n_points):
        circuit.set_widths(result.widths_at_iteration(iteration))
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg.analysis)
        bound = run_ssta(graph, model).percentile(cfg.percentile)
        mc = run_monte_carlo(
            graph, model, n_samples=cfg.mc_samples, seed=cfg.mc_seed
        ).percentile(cfg.percentile)
        points.append(
            TradeoffPoint(
                iteration=iteration,
                total_size=total_gate_size(circuit),
                bound_delay=bound,
                mc_delay=mc,
            )
        )
    return points


def run_figure10(
    circuit_name: str = "c3540",
    config: Optional[ExperimentConfig] = None,
    *,
    n_points: int = 6,
) -> Figure10Result:
    """Regenerate the Figure 10 curves (default circuit: c3540, as in
    the paper)."""
    cfg = config if config is not None else active_config()
    objective = cfg.objective()

    det_circuit = load_scaled(circuit_name, cfg)
    det_result = DeterministicSizer(
        det_circuit, config=cfg.analysis, objective=objective,
        max_iterations=cfg.iterations,
    ).run()
    moves = max(1, det_result.n_iterations)

    stat_circuit = load_scaled(circuit_name, cfg)
    stat_result = PrunedStatisticalSizer(
        stat_circuit, config=cfg.analysis, objective=objective,
        max_iterations=moves,
    ).run()

    return Figure10Result(
        circuit=circuit_name,
        percentile=cfg.percentile,
        deterministic=_trace(circuit_name, det_result, cfg, n_points),
        statistical=_trace(circuit_name, stat_result, cfg, n_points),
    )
