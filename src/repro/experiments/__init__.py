"""Experiment harness regenerating every table and figure of the paper.

* :func:`run_table1` — Table 1, deterministic vs statistical 99%-delay
* :func:`run_table2` — Table 2, brute force vs pruned runtimes
* :func:`run_figure1` — Figure 1, the wall of near-critical paths
* :func:`run_figure2` — Figure 2, CDF perturbation of one sizing move
* :func:`run_figure10` — Figure 10, area-delay curves + MC validation

All accept an :class:`ExperimentConfig`; the default is a fast, scaled
configuration (set env ``REPRO_FULL=1`` for paper-scale runs).
"""

from .common import (
    ExperimentConfig,
    active_config,
    evaluate_statistical,
    evaluate_widths,
    fast_config,
    load_scaled,
    paper_config,
)
from .figure1 import Figure1Result, run_figure1
from .figure2 import Figure2Result, run_figure2
from .figure10 import Figure10Result, TradeoffPoint, run_figure10
from .report import format_series, format_table
from .table1 import Table1Result, Table1Row, run_table1, run_table1_circuit
from .table2 import Table2Result, Table2Row, run_table2, run_table2_circuit

__all__ = [
    "ExperimentConfig",
    "fast_config",
    "paper_config",
    "active_config",
    "load_scaled",
    "evaluate_statistical",
    "evaluate_widths",
    "format_table",
    "format_series",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "run_table1_circuit",
    "Table2Row",
    "Table2Result",
    "run_table2",
    "run_table2_circuit",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "Figure10Result",
    "TradeoffPoint",
    "run_figure10",
]
