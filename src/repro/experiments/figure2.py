"""Figure 2: how one sizing move perturbs the circuit-delay CDF.

The paper's Figure 2 illustrates the optimization objective: up-sizing
a gate shifts (and generally reshapes) the circuit-delay CDF, and the
sensitivity is read off as the change of the 99-percentile point.  We
regenerate it with real data: take a benchmark, up-size its most
sensitive gate by ``dw``, and emit both CDFs plus the objective
movement, together with the per-percentile gap profile
``delta(p) = T(A, p) - T(A', p)`` whose maximum is the paper's
perturbation bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.brute_force_sizer import BruteForceStatisticalSizer
from ..core.sensitivity import perturbed_sink_pdf
from ..dist.metrics import max_percentile_gap
from ..dist.pdf import DiscretePDF
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from ..timing.ssta import run_ssta
from .common import ExperimentConfig, active_config, load_scaled
from .report import format_series, format_table

__all__ = ["Figure2Result", "run_figure2"]


@dataclass
class Figure2Result:
    """Unperturbed and perturbed sink CDFs around one sizing move."""

    circuit: str
    gate: str
    dw: float
    unperturbed: DiscretePDF
    perturbed: DiscretePDF
    objective_before: float
    objective_after: float
    percentile: float
    max_gap: float

    @property
    def objective_shift(self) -> float:
        """Change of the p-percentile point (ps) — what Figure 2 marks."""
        return self.objective_before - self.objective_after

    def gap_profile(self, n_levels: int = 19) -> Tuple[np.ndarray, np.ndarray]:
        """``(p, delta(p))`` — horizontal CDF gap per probability level."""
        levels = np.linspace(0.05, 0.99, n_levels)
        gaps = self.unperturbed.percentiles(levels) - self.perturbed.percentiles(levels)
        return levels, gaps

    def render(self) -> str:
        head = format_table(
            f"Figure 2 — CDF perturbation on {self.circuit} "
            f"(gate {self.gate} up-sized by {self.dw:g})",
            ["quantity", "value"],
            [
                (f"{100 * self.percentile:g}% delay before (ps)", self.objective_before),
                (f"{100 * self.percentile:g}% delay after (ps)", self.objective_after),
                ("objective shift (ps)", self.objective_shift),
                ("max horizontal gap delta (ps)", self.max_gap),
            ],
        )
        levels, gaps = self.gap_profile()
        profile = format_series(
            "per-percentile gap profile",
            ["p", "delta(p) (ps)"],
            [list(levels), list(gaps)],
        )
        return head + "\n\n" + profile


def run_figure2(
    circuit_name: str = "c432",
    config: Optional[ExperimentConfig] = None,
    *,
    gate_name: Optional[str] = None,
) -> Figure2Result:
    """Regenerate Figure 2: perturb the most sensitive gate (or a named
    one) and report the CDF movement."""
    cfg = config if config is not None else active_config()
    objective = cfg.objective()
    circuit = load_scaled(circuit_name, cfg)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=cfg.analysis)
    base = run_ssta(graph, model)
    dw = cfg.analysis.delta_w

    if gate_name is None:
        # One brute-force selection pass identifies the most sensitive gate.
        sizer = BruteForceStatisticalSizer(
            circuit, config=cfg.analysis, objective=objective, max_iterations=1
        )
        selection = sizer._select_gate()  # noqa: SLF001
        gate = selection.best_gate
        if gate is None:
            gate = next(iter(circuit.gates()))
        # The sizer built its own graph/model over the same circuit; we
        # keep using ours (identical) for the reported distributions.
        gate_name = gate.name
    target = circuit.gate(gate_name)

    perturbed = perturbed_sink_pdf(graph, model, target, dw)
    before = objective.evaluate(base.sink_pdf)
    after = objective.evaluate(perturbed)
    return Figure2Result(
        circuit=circuit_name,
        gate=gate_name,
        dw=dw,
        unperturbed=base.sink_pdf,
        perturbed=perturbed,
        objective_before=before,
        objective_after=after,
        percentile=cfg.percentile,
        max_gap=max_percentile_gap(base.sink_pdf, perturbed),
    )
