"""repro — Statistical Timing Based Optimization using Gate Sizing.

A complete reproduction of Agarwal, Chopra & Blaauw (DATE 2005): a
block-based statistical static timing analyzer propagating discretized
arrival-time PDFs, a logical-effort gate-sizing substrate, and the
paper's sensitivity-based statistical optimizer with its exact
perturbation-bound pruning algorithm — plus the deterministic and
brute-force baselines and the experiment harness regenerating every
table and figure.

Quickstart::

    import repro

    circuit = repro.load("c432")
    sizer = repro.PrunedStatisticalSizer(circuit, max_iterations=50)
    result = sizer.run()
    print(result.final_objective, result.size_increase_percent)
"""

from .config import AnalysisConfig, DEFAULT_CONFIG
from .core import (
    BruteForceStatisticalSizer,
    DeterministicSizer,
    MeanObjective,
    MeanPlusSigmaObjective,
    Objective,
    PercentileObjective,
    PerturbationFront,
    HeuristicStatisticalSizer,
    PrunedStatisticalSizer,
    SizingResult,
    default_objective,
)
from .dist import (
    AutoBackend,
    ConvolutionBackend,
    DirectBackend,
    DiscretePDF,
    FFTBackend,
    OpCounter,
    available_backends,
    convolve,
    get_backend,
    max_percentile_gap,
    sample_truncated_gaussian,
    stat_max,
    stat_max_groups,
    stat_max_many,
    stochastically_le,
    truncated_gaussian_pdf,
)
from .errors import ReproError
from .exec import (
    Executor,
    SerialExecutor,
    get_executor,
    shutdown_executors,
)


def __getattr__(name: str):
    # Lazy like repro.exec itself: ProcessExecutor pulls in the
    # multiprocessing stack, which pure-serial users never need.
    if name == "ProcessExecutor":
        from .exec.pool import ProcessExecutor

        return ProcessExecutor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from .library import CellLibrary, CellType, SizingLimits, default_library, total_gate_size
from .netlist import (
    PAPER_SUITE,
    Circuit,
    CircuitSpec,
    Gate,
    generate_circuit,
    load,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from .timing import (
    DelayModel,
    YieldComparison,
    delay_at_yield,
    timing_yield,
    update_ssta_after_resize,
    yield_curve,
    yield_gain,
    MonteCarloResult,
    SSTAResult,
    STAResult,
    TimingGraph,
    k_longest_paths,
    path_delay_histogram,
    run_monte_carlo,
    run_ssta,
    run_sta,
    wall_metric,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "ReproError",
    # distributions
    "DiscretePDF",
    "OpCounter",
    "ConvolutionBackend",
    "DirectBackend",
    "FFTBackend",
    "AutoBackend",
    "available_backends",
    "get_backend",
    "convolve",
    "stat_max",
    "stat_max_many",
    "stat_max_groups",
    "truncated_gaussian_pdf",
    "sample_truncated_gaussian",
    "max_percentile_gap",
    "stochastically_le",
    # execution plans
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "get_executor",
    "shutdown_executors",
    # library
    "CellType",
    "CellLibrary",
    "default_library",
    "SizingLimits",
    "total_gate_size",
    # netlist
    "Circuit",
    "Gate",
    "CircuitSpec",
    "generate_circuit",
    "load",
    "PAPER_SUITE",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    # timing
    "TimingGraph",
    "DelayModel",
    "STAResult",
    "run_sta",
    "SSTAResult",
    "run_ssta",
    "MonteCarloResult",
    "run_monte_carlo",
    "path_delay_histogram",
    "k_longest_paths",
    "wall_metric",
    "timing_yield",
    "delay_at_yield",
    "yield_curve",
    "yield_gain",
    "YieldComparison",
    "update_ssta_after_resize",
    # core
    "Objective",
    "PercentileObjective",
    "MeanObjective",
    "MeanPlusSigmaObjective",
    "default_objective",
    "PerturbationFront",
    "DeterministicSizer",
    "BruteForceStatisticalSizer",
    "HeuristicStatisticalSizer",
    "PrunedStatisticalSizer",
    "SizingResult",
]
