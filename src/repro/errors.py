"""Exception hierarchy for the reproduction library.

Every error raised deliberately by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridMismatchError(ReproError):
    """Two distributions with different grid spacings were combined."""


class DistributionError(ReproError):
    """A distribution is malformed (empty, negative mass, zero total)."""


class NetlistError(ReproError):
    """A circuit/netlist is structurally invalid."""


class BenchParseError(NetlistError):
    """An ISCAS ``.bench`` file could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


class LibraryError(ReproError):
    """A cell library lookup or definition failed."""


class TimingError(ReproError):
    """A timing analysis could not be carried out."""


class OptimizationError(ReproError):
    """A sizing optimization was configured or converged incorrectly."""


class ServiceError(ReproError):
    """A timing-analysis-service request failed (bad request payload,
    unknown session, or a transport/HTTP failure in the client)."""


class ServiceOverloadedError(ServiceError):
    """The service rejected a request *before executing it* because its
    admission queue was full (HTTP 503 + ``Retry-After``).

    Rejection happens pre-execution by construction — the request never
    reached a handler — so retrying is always safe, even for
    non-idempotent endpoints like ``/optimize``.  ``retry_after_s``
    carries the server's hint when one was sent.
    """

    def __init__(self, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceTransportError(ServiceError):
    """The request failed at the transport layer (connection refused or
    reset, timeout, DNS) with no HTTP response from the server.

    Distinct from plain :class:`ServiceError` (a 4xx/422 the server
    deliberately sent): a transport failure is usually transient — a
    worker restarting, a drain in progress — but the client cannot know
    whether the request executed, so only idempotent requests may be
    retried on it.
    """
