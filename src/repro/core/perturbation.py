"""Perturbation fronts and the Theorem 1-4 sensitivity bounds.

This module implements the paper's central machinery (Sections 3.2 and
3.3).  Up-sizing a candidate gate ``x`` perturbs the delay PDFs of
``x`` and of the gates driving its inputs (their load grows).  Instead
of re-running SSTA over the whole circuit, a :class:`PerturbationFront`
propagates only the *perturbed* arrival CDFs forward, level by level,
re-using the unperturbed SSTA arrivals everywhere else.

For every perturbed node ``i`` the front records

    delta_i = max_p [ T(A_i, p) - T(A'_i, p) ],

the maximum horizontal gap between unperturbed and perturbed CDFs.
Theorems 1-3 prove this gap cannot grow through convolution or the
independence max, and Theorem 4 lifts that to the whole front: the
eventual gap at the sink is bounded by ``delta_mx``, the maximum
``delta_i`` over the *active cut* — perturbed nodes that still have
un-propagated fan-out arcs.  Dividing by ``dw`` gives the front
sensitivity bound

    Smx = delta_mx / dw  >=  Sx,

which the pruned sizer uses to discard candidates early.

Sign subtlety (the paper implicitly assumes improvements): when a
perturbation *degrades* a node (``delta_i < 0``), a downstream
statistical max with an unperturbed arrival can mask the degradation,
so ``delta`` may rise back toward zero.  The precise invariant is
therefore ``delta_downstream <= max(delta_mx, 0)``: non-increasing in
the positive regime, and never able to cross from negative to a
positive value.  Pruning soundness is unaffected — the exact
sensitivity satisfies ``Sx <= max(Smx, 0)``, and a candidate is only
ever selected when its sensitivity strictly exceeds ``Max_S >= 0``.

Exactness guarantee: the front computes perturbed arrivals with the
*same* kernel (:func:`repro.timing.ssta.compute_node_arrival`), the
same delay-PDF cache, and the same unperturbed inputs a full SSTA rerun
would use, so a front propagated all the way to the sink reproduces the
brute-force sink distribution **bit for bit** — pruning never changes
the optimizer's decisions, only its cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..dist.backends import get_backend
from ..dist.metrics import max_percentile_gap
from ..dist.ops import OpCounter
from ..dist.pdf import DiscretePDF
from ..dist.sparse import as_dense
from ..errors import OptimizationError
from ..exec import get_executor
from ..netlist.circuit import Gate
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from ..timing.ssta import (
    SSTAResult,
    compute_level_arrivals,
    compute_node_arrival,
    node_fanin_parts,
)
from .objectives import Objective

__all__ = ["PerturbationFront"]

_NEG_INF = float("-inf")


def _identical(a: DiscretePDF, b: DiscretePDF) -> bool:
    """Bitwise equality of two distributions on the same grid.

    The identity shortcut matters with the convolution-result cache
    enabled: an absorbed perturbation resolves to the *same object* the
    base SSTA stored, so most checks never touch the mass vectors.
    """
    if a is b:
        return True
    return (
        a.offset == b.offset
        and a.n_bins == b.n_bins
        and np.array_equal(a.masses, b.masses)
    )


class PerturbationFront:
    """Level-by-level propagation of one candidate gate's perturbation.

    Construction runs the paper's ``Initialize`` (Figure 7): the
    candidate is temporarily up-sized, the delay PDFs of the affected
    gates are re-evaluated, the perturbation front is seeded with their
    output nets, and the front is advanced to the candidate's own
    level so that :attr:`smx` is available for the first sort.

    Afterwards, :meth:`propagate_one_level` (Figure 9) advances the
    front one level at a time; :attr:`smx` is non-increasing along the
    way (the property tests assert this).  When the front reaches the
    sink — or dies out because every perturbed CDF collapsed back onto
    its unperturbed value — :attr:`sensitivity` holds the exact ``Sx``.

    Parameters
    ----------
    drop_identical:
        Retire perturbed nodes whose CDF equals the unperturbed CDF
        bitwise.  This is exact (their downstream influence is nil) and
        lets absorbed perturbations terminate early; disable to follow
        the paper's pseudocode to the letter.
    """

    def __init__(
        self,
        graph: TimingGraph,
        model: DelayModel,
        base: SSTAResult,
        gate: Gate,
        dw: float,
        objective: Objective,
        *,
        counter: Optional[OpCounter] = None,
        drop_identical: bool = True,
    ) -> None:
        if dw <= 0.0:
            raise OptimizationError(f"dw must be positive, got {dw}")
        self.graph = graph
        self.model = model
        self.base = base
        self.gate = gate
        self.dw = dw
        self.objective = objective
        self.counter = counter
        self.drop_identical = drop_identical
        # Resolve once from the analysis config: the front's bitwise
        # exactness claim is against a full SSTA rerun *under the same
        # backend*, so both must take the kernel from the same knob.
        # The result cache rides along identically — and it is where
        # the cache earns its keep: every front re-convolves the
        # unperturbed arcs of each node it touches with exactly the
        # operands the base SSTA (and every sibling front) already
        # used.
        self._backend = get_backend(model.config.backend)
        self._cache = model.config.cache
        # Execution plan, resolved once like the backend: front levels
        # are usually narrow (a cone cut), so the plan's small-batch
        # fold-down matters more here than raw parallel width.
        self._executor = (
            get_executor(model.config.jobs, model.config.transport)
            if model.config.level_batch else None
        )

        #: perturbed arrival PDFs of live nodes (the paper's A'set entries)
        self._perturbed: Dict[int, DiscretePDF] = {}
        #: remaining un-propagated fan-out arcs per computed node
        self._pending: Dict[int, int] = {}
        #: delta_i per *active* computed node
        self._delta: Dict[int, float] = {}
        #: scheduled-but-not-yet-computed nodes
        self._scheduled: Set[int] = set()
        #: perturbed delay PDFs, keyed by gate name
        self._perturbed_delay: Dict[str, DiscretePDF] = {}
        #: gates whose delay PDFs this candidate perturbs (Figure 7)
        self._affected: List[Gate] = []

        # Dependency ledger for cross-iteration reuse (:meth:`try_rebase`):
        # every unperturbed input the front has consumed so far, recorded
        # *by object*.  With the convolution-result cache enabled,
        # unchanged inputs stay object-identical across sizing
        # iterations, so identity checks decide reusability exactly.
        # Tracking costs two dict stores per consumed input; it is only
        # enabled when a cache is configured (without one, base arrivals
        # are rebuilt every iteration and reuse could never trigger).
        self._track_deps = model.config.cache is not None
        #: node -> unperturbed arrival object consumed there
        self._dep_arrivals: Dict[int, DiscretePDF] = {}
        #: gate output net -> (gate, unperturbed delay PDF object)
        self._dep_delays: Dict[str, tuple] = {}

        #: bound after Initialize (before any on-demand propagation) —
        #: recorded so beam-style consumers can rank resumed fronts by
        #: the same key a freshly built front would have produced.
        self.initial_smx: float = _NEG_INF

        self.curr_level: int = 0
        self.levels_propagated: int = 0
        self.nodes_computed: int = 0
        self.reached_sink: bool = False
        self.sink_pdf: Optional[DiscretePDF] = None
        self.sensitivity: Optional[float] = None
        self._smx: float = _NEG_INF

        self._initialize()

    # ------------------------------------------------------------------
    # Public state
    # ------------------------------------------------------------------
    @property
    def smx(self) -> float:
        """Current sensitivity bound ``Smx = delta_mx / dw``.

        Once the exact sensitivity is known (front finished) this
        returns it, so sorting keys stay meaningful throughout.
        """
        if self.sensitivity is not None:
            return self.sensitivity
        return self._smx

    @property
    def is_done(self) -> bool:
        """True when no nodes remain to propagate."""
        return not self._scheduled

    @property
    def front_size(self) -> int:
        """Number of live nodes (computed-active plus scheduled)."""
        return len(self._delta) + len(self._scheduled)

    # ------------------------------------------------------------------
    # Initialize (Figure 7)
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        affected = self.model.gates_affected_by_resize(self.gate)
        self._affected = list(affected)
        original = self.gate.width
        self.gate.width = original + self.dw
        try:
            for g in affected:
                self._perturbed_delay[g.output] = self.model.delay_pdf(g)
        finally:
            self.gate.width = original

        for g in affected:
            self._scheduled.add(self.graph.gate_output_node(g))
        self.curr_level = min(self.graph.level(n) for n in self._scheduled)
        target = self.graph.level(self.graph.gate_output_node(self.gate))
        while self._scheduled and self.curr_level <= target:
            self.propagate_one_level()
        self.initial_smx = self.smx

    # ------------------------------------------------------------------
    # PropagateOneLevel (Figure 9)
    # ------------------------------------------------------------------
    def _get_arrival(self, node: int) -> DiscretePDF:
        pdf = self._perturbed.get(node)
        if pdf is not None:
            return pdf
        pdf = self.base.arrivals[node]
        if self._track_deps:
            self._dep_arrivals[node] = pdf
        return pdf

    def _get_delay_pdf(self, gate: Gate) -> DiscretePDF:
        pdf = self._perturbed_delay.get(gate.output)
        if pdf is not None:
            return pdf
        pdf = self.model.delay_pdf(gate)
        if self._track_deps:
            self._dep_delays[gate.output] = (gate, pdf)
        return pdf

    def propagate_one_level(self) -> None:
        """Advance the front to the next level that has scheduled nodes
        and compute the perturbed arrivals there.

        Under ``config.level_batch`` (the default) the level's nodes —
        mutually independent, like every level batch — run through the
        shared scheduler: one ``convolve_many`` dispatch, one grouped
        MAX sweep.  Gathering every node's fan-in operands before any
        computation is equivalent to the sequential interleave because
        the per-node bookkeeping below only ever retires a perturbed
        fan-in once its *last* outstanding arc is consumed — a fan-in
        feeding two nodes of this level survives the first node's
        retirement exactly as it does sequentially.
        """
        if not self._scheduled:
            self._finish()
            return
        level = min(self.graph.level(n) for n in self._scheduled)
        self.curr_level = level
        prop_nodes = sorted(
            n for n in self._scheduled if self.graph.level(n) == level
        )
        cfg = self.model.config
        if cfg.level_batch:
            parts_list = [
                node_fanin_parts(
                    self.graph, node, self._get_arrival, self._get_delay_pdf
                )
                for node in prop_nodes
            ]
            perturbed_list = compute_level_arrivals(
                parts_list,
                trim_eps=cfg.tail_eps,
                counter=self.counter,
                backend=self._backend,
                cache=self._cache,
                executor=self._executor,
            )
        else:
            perturbed_list = None
        for pos, node in enumerate(prop_nodes):
            self._scheduled.discard(node)
            if perturbed_list is not None:
                perturbed = perturbed_list[pos]
            else:
                perturbed = compute_node_arrival(
                    self.graph,
                    node,
                    self._get_arrival,
                    self._get_delay_pdf,
                    trim_eps=cfg.tail_eps,
                    counter=self.counter,
                    backend=self._backend,
                    cache=self._cache,
                )
            self.nodes_computed += 1
            self._retire_fanins(node)
            # The dependency ledger records the *stored* object (its
            # identity is what try_rebase checks); numerics use the
            # dense form, which sparse-stored bases rebuild on read.
            base_stored = self.base.arrivals[node]
            if self._track_deps:
                self._dep_arrivals[node] = base_stored
            base_pdf = as_dense(base_stored)
            if self.drop_identical and _identical(perturbed, base_pdf):
                continue  # perturbation fully absorbed at this node
            if node == self.graph.sink:
                self.reached_sink = True
                self.sink_pdf = perturbed
                self.sensitivity = (
                    self.objective.improvement(base_pdf, perturbed) / self.dw
                )
                continue
            delta = self._percentile_gap(base_pdf, perturbed)
            fanouts = self.graph.fanout_edges(node)
            self._perturbed[node] = perturbed
            self._pending[node] = len(fanouts)
            self._delta[node] = delta
            for edge in fanouts:
                if edge.dst not in self._perturbed:
                    self._scheduled.add(edge.dst)
        self.levels_propagated += 1
        self.curr_level = level + 1
        self._refresh_smx()
        if not self._scheduled:
            self._finish()

    def _percentile_gap(self, base: DiscretePDF, pert: DiscretePDF) -> float:
        """Theorem-4 delta, memoized through the analysis cache.

        The gap evaluation costs as much as the kernel work it
        measures, and with cached kernels the same (base, perturbed)
        pair recurs across sibling fronts and optimizer iterations.
        Keys carry absolute offsets (see ``ConvolutionCache``), so a
        hit is bit-exact — the pruning order cannot drift by an ulp.
        """
        cache = self._cache
        if cache is None:
            return max_percentile_gap(base, pert)
        gap = cache.lookup_gap(base, pert)
        if gap is None:
            gap = max_percentile_gap(base, pert)
            cache.store_gap(base, pert, gap)
        return gap

    def _retire_fanins(self, node: int) -> None:
        """Decrement pending fan-out counts of this node's perturbed
        fan-ins; fully propagated nodes leave the active cut (and their
        stored PDFs are released, as in the paper's fo_count scheme)."""
        for edge in self.graph.fanin_edges(node):
            src = edge.src
            remaining = self._pending.get(src)
            if remaining is None:
                continue
            if remaining <= 1:
                del self._pending[src]
                del self._delta[src]
                del self._perturbed[src]
            else:
                self._pending[src] = remaining - 1

    def _refresh_smx(self) -> None:
        if self._delta:
            self._smx = max(self._delta.values()) / self.dw
        elif self._scheduled:
            # Between Initialize sub-steps every computed node may have
            # retired while fanouts are still scheduled; keep the last
            # bound (it is still valid and non-increasing).
            pass
        else:
            self._smx = _NEG_INF

    def _finish(self) -> None:
        """Front exhausted: if the sink was never reached the
        perturbation died out and the exact sensitivity is zero."""
        if self.sensitivity is None:
            self.sensitivity = 0.0
        self._smx = self.sensitivity

    # ------------------------------------------------------------------
    # Cross-iteration reuse
    # ------------------------------------------------------------------
    def try_rebase(self, new_base: SSTAResult) -> bool:
        """Adopt a fresh base SSTA result if — and only if — every input
        this front has consumed so far is unchanged, and return whether
        that succeeded.

        The check is exact and conservative: the perturbed delay PDFs
        are re-derived at the candidate's *current* width and compared
        by object identity against the ones the front was built from,
        and every recorded unperturbed dependency (base arrivals read,
        delay PDFs of unaffected gates) must be the identical object in
        the new analysis state.  Object identity is a sound proxy for
        content here because the convolution-result cache returns the
        stored object for unchanged recomputations — which is also why
        reuse is only attempted when a cache is configured.  On success
        the front's state (including a finished front's exact
        sensitivity) is bitwise the state a freshly built front would
        reach at the same level under ``new_base``, by induction over
        the identical inputs; propagation simply continues against the
        new base.  On failure the caller rebuilds the front from
        scratch — reuse can only ever skip work, never change answers.
        """
        if not self._track_deps:
            return False
        # The candidate's perturbation must re-derive identically at
        # today's widths and loads (a resized neighbor, or the gate
        # itself having won, shows up right here).
        original = self.gate.width
        self.gate.width = original + self.dw
        try:
            for g in self._affected:
                if self.model.delay_pdf(g) is not self._perturbed_delay[g.output]:
                    return False
        finally:
            self.gate.width = original
        for node, pdf in self._dep_arrivals.items():
            if new_base.arrivals[node] is not pdf:
                return False
        for _net, (gate, pdf) in self._dep_delays.items():
            if self.model.delay_pdf(gate) is not pdf:
                return False
        self.base = new_base
        return True

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def run_to_sink(self) -> float:
        """Propagate until finished and return the exact sensitivity —
        the standalone (unpruned) use of the front machinery."""
        while not self.is_done:
            self.propagate_one_level()
        if self.sensitivity is None:  # pragma: no cover - defensive
            self._finish()
        assert self.sensitivity is not None
        return self.sensitivity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.is_done else f"level {self.curr_level}"
        return (
            f"PerturbationFront(gate={self.gate.name!r}, {state}, "
            f"smx={self.smx:.4g}, live={self.front_size})"
        )
