"""The paper's contribution: statistical sizing objectives, exact
sensitivities, perturbation fronts with Theorem 1-4 bounds, and the
three optimizers compared in Section 4."""

from .brute_force_sizer import BruteForceStatisticalSizer
from .deterministic_sizer import DeterministicSizer
from .heuristic_sizer import HeuristicStatisticalSizer
from .objectives import (
    MeanObjective,
    MeanPlusSigmaObjective,
    Objective,
    PercentileObjective,
    default_objective,
)
from .perturbation import PerturbationFront
from .pruned_sizer import PrunedStatisticalSizer
from .sensitivity import (
    deterministic_sensitivity,
    perturbed_sink_pdf,
    statistical_sensitivity,
)
from .sizer_base import IterationStats, Selection, SizerBase, SizingResult, SizingStep

__all__ = [
    "Objective",
    "PercentileObjective",
    "MeanObjective",
    "MeanPlusSigmaObjective",
    "default_objective",
    "statistical_sensitivity",
    "deterministic_sensitivity",
    "perturbed_sink_pdf",
    "PerturbationFront",
    "SizerBase",
    "SizingResult",
    "SizingStep",
    "IterationStats",
    "DeterministicSizer",
    "HeuristicStatisticalSizer",
    "Selection",
    "BruteForceStatisticalSizer",
    "PrunedStatisticalSizer",
]
