"""The paper's accelerated statistical sizer (Figure 6).

Each iteration searches for the most sensitive gate *without* a full
SSTA per candidate:

1. run one SSTA to refresh unperturbed arrivals (step 2);
2. ``Initialize`` a perturbation front per candidate gate (steps 3-4);
3. keep candidates ordered by their sensitivity bound ``Smx``
   (step 5); repeatedly advance the *most promising* front one level
   (steps 7-10), so a highly sensitive gate reaches the sink early and
   its exact ``Sx`` raises ``Max_S``;
4. discard any candidate whose bound falls below ``Max_S`` — by
   Theorem 4 it can never win (step 20);
5. when the candidate list empties, size the winner by ``dw``
   (step 22) and iterate until no gate helps (``Max_S <= 0``).

The ordered list is a lazy max-heap: a front's ``Smx`` only changes
when *we* propagate it (it is non-increasing, Theorems 1-3), so heap
keys are exact at push time and the pop order matches the paper's
sorted ``gate_list``.  Pruning decisions use strict inequality
(``Smx < Max_S``), exactly as in step 20, so ties are propagated, never
guessed — this optimizer selects the same gates as the brute-force
sizer, bit for bit.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..dist.ops import OpCounter
from ..errors import OptimizationError
from ..netlist.circuit import Gate
from ..timing.incremental import update_ssta_after_resize
from ..timing.ssta import run_ssta
from .objectives import Objective
from .perturbation import PerturbationFront
from .sizer_base import IterationStats, Selection, SizerBase

__all__ = ["PrunedStatisticalSizer"]


class PrunedStatisticalSizer(SizerBase):
    """Statistical sizing with perturbation-bound pruning.

    Parameters beyond :class:`SizerBase`:

    drop_identical:
        Let fronts retire nodes whose perturbed CDF is bitwise equal to
        the unperturbed one (exact shortcut; see
        :class:`~repro.core.perturbation.PerturbationFront`).
    gates_per_iteration:
        Size the top ``N`` gates per iteration instead of one — the
        modification the paper points out after Figure 6.  The pruning
        threshold generalizes from ``Max_S`` to the ``N``-th best
        finished sensitivity, which is still exact with respect to the
        top-``N`` set; per-iteration objective values become
        first-order estimates (re-anchored by the next SSTA).
    incremental_ssta:
        Refresh the unperturbed arrivals (Figure 6 step 2) with an
        exact incremental cone update instead of a from-scratch SSTA.
        Bitwise identical results (see
        :mod:`repro.timing.incremental`); off by default to follow the
        paper's pseudocode literally.

    When the analysis config carries a convolution-result cache, the
    sizer additionally *reuses perturbation fronts across iterations*:
    a candidate whose recorded dependencies are unchanged (see
    :meth:`~repro.core.perturbation.PerturbationFront.try_rebase`)
    resumes from its previous state — a finished front contributes its
    exact sensitivity for free — instead of re-running ``Initialize``
    and re-propagating.  This changes only *where* the heap starts each
    front, never the selection: pruning uses bounds that are valid at
    every level, the eventual winner's bound can never fall below the
    selection threshold, and exact ties are resolved by candidate order
    independent of completion order — so the selected gates, their
    sensitivities, and the resulting sizes are bitwise identical with
    the cache on or off (the sizer-golden tests pin this).
    """

    name = "pruned-statistical"

    def __init__(
        self,
        circuit,
        *,
        drop_identical: bool = True,
        gates_per_iteration: int = 1,
        incremental_ssta: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(circuit, **kwargs)
        if not self.objective.shift_bounded:
            raise OptimizationError(
                f"objective {self.objective.name!r} is not bounded by "
                "horizontal CDF shifts; Theorem 4 pruning would be unsound. "
                "Use BruteForceStatisticalSizer for this objective."
            )
        if gates_per_iteration < 1:
            raise OptimizationError(
                f"gates_per_iteration must be >= 1, got {gates_per_iteration}"
            )
        self.drop_identical = drop_identical
        self.gates_per_iteration = gates_per_iteration
        self.incremental_ssta = incremental_ssta
        self._base: Optional[object] = None
        #: previous iteration's fronts by gate name (cross-iteration
        #: reuse; only consulted when the config carries a cache).
        self._fronts: dict = {}

    def _after_apply(self, gates) -> None:
        if self.incremental_ssta and self._base is not None:
            update_ssta_after_resize(self._base, self.model, gates)

    def _refresh_base(self, counter: OpCounter):
        if not self.incremental_ssta or self._base is None:
            self._base = run_ssta(self.graph, self.model, counter=counter)
        return self._base

    def _build_fronts(self, base, candidates, dw, counter):
        """One front per candidate: resumed from the previous iteration
        when its dependencies are unchanged, freshly initialized
        otherwise.  ``nodes_computed`` baselines are snapshotted so the
        iteration stats count only this iteration's work."""
        previous = self._fronts
        fronts = []
        self._nodes_baseline = baseline = {}
        for gate in candidates:
            front = previous.get(gate.name)
            if (
                front is not None
                and front.gate is gate
                and front.try_rebase(base)
            ):
                front.counter = counter
                baseline[id(front)] = front.nodes_computed
            else:
                front = PerturbationFront(
                    self.graph,
                    self.model,
                    base,
                    gate,
                    dw,
                    self.objective,
                    counter=counter,
                    drop_identical=self.drop_identical,
                )
            fronts.append(front)
        self._fronts = {f.gate.name: f for f in fronts}
        return fronts

    def _select_gate(self) -> Selection:
        dw = self.config.delta_w
        n_select = self.gates_per_iteration
        counter = OpCounter()
        base = self._refresh_base(counter)
        base_obj = self.objective.evaluate(base.sink_pdf)
        candidates = self._candidates()
        stats = IterationStats(candidates=len(candidates))

        fronts = self._build_fronts(base, candidates, dw, counter)

        # Min-heap of the current top-N finished fronts, keyed by
        # (sensitivity, -candidate order): the heap minimum is the
        # entry that loses to any contender — strictly smaller
        # sensitivity, or an equal sensitivity at a *later* candidate
        # position.  The order tiebreak mirrors the brute-force loop
        # (first candidate wins among exact ties); without it the
        # winner of a tie would depend on front completion order.
        top: List[Tuple[float, int, PerturbationFront]] = []

        def threshold() -> float:
            return top[0][0] if len(top) >= n_select else 0.0

        def record(front: PerturbationFront, order: int) -> None:
            s = front.sensitivity
            assert s is not None
            stats.finished_fronts += 1
            if s <= 0.0:
                return
            if len(top) < n_select:
                heapq.heappush(top, (s, -order, front))
            elif (s, -order) > top[0][:2]:
                heapq.heapreplace(top, (s, -order, front))

        heap: List[Tuple[float, int, PerturbationFront]] = [
            (-f.smx, i, f) for i, f in enumerate(fronts)
        ]
        heapq.heapify(heap)
        while heap:
            _neg, idx, front = heapq.heappop(heap)
            if front.sensitivity is not None:
                # Front finished during Initialize or a previous pop.
                record(front, idx)
                continue
            if front.smx < threshold():
                stats.pruned += 1
                continue
            front.propagate_one_level()
            if front.sensitivity is not None:
                record(front, idx)
            else:
                heapq.heappush(heap, (-front.smx, idx, front))

        baseline = self._nodes_baseline
        stats.nodes_computed = sum(
            f.nodes_computed - baseline.get(id(f), 0) for f in fronts
        )
        stats.convolutions = counter.convolutions
        stats.max_ops = counter.max_ops
        stats.cache_hits = counter.cache_hits
        if not top:
            return Selection([], base_obj, base_obj, stats)
        winners = sorted(top, key=lambda item: (-item[0], -item[1]))
        moves = [(front.gate, s) for s, _i, front in winners]
        estimate = base_obj - sum(s for _g, s in moves) * dw
        return Selection(moves, base_obj, estimate, stats)
