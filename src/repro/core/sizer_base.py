"""Shared coordinate-descent scaffolding for all three sizers.

The paper compares three optimizers that share one outer loop: analyse
the circuit, pick the gate with the best sensitivity, grow it by ``dw``,
repeat (Figure 6).  They differ only in how the best gate is found —
deterministic STA on the critical path, brute-force SSTA per candidate,
or the pruned perturbation-front search.  :class:`SizerBase` owns the
loop, the stopping rules, and the per-iteration bookkeeping that the
Table 1/Table 2/Figure 10 experiments consume.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..errors import OptimizationError
from ..library.library import CellLibrary, default_library
from ..library.sizing import SizingLimits, total_gate_size
from ..netlist.circuit import Circuit, Gate
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from .objectives import Objective, default_objective

__all__ = ["IterationStats", "SizingStep", "SizingResult", "SizerBase"]


@dataclass
class IterationStats:
    """Work performed during one sizing iteration (Table 2 raw data).

    ``convolutions``/``max_ops`` count kernel operations actually
    computed; ``cache_hits`` counts requests served from the
    convolution-result cache (see :mod:`repro.dist.cache`), kept
    separate so cached work is visible without inflating the computed
    tallies — their sum is cache-invariant for a given trajectory.
    """

    wall_time_s: float = 0.0
    candidates: int = 0
    pruned: int = 0
    finished_fronts: int = 0
    nodes_computed: int = 0
    convolutions: int = 0
    max_ops: int = 0
    cache_hits: int = 0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of candidates eliminated before reaching the sink."""
        if self.candidates == 0:
            return 0.0
        return self.pruned / self.candidates

    @property
    def cache_hit_rate(self) -> float:
        """cache_hits over all kernel requests this iteration."""
        requests = self.convolutions + self.max_ops + self.cache_hits
        if requests == 0:
            return 0.0
        return self.cache_hits / requests


@dataclass
class SizingStep:
    """One accepted sizing iteration (usually a single gate move).

    With ``gates_per_iteration > 1`` (the paper notes the algorithm "can
    be easily modified to size multiple gates in the same iteration")
    the runner-up gates land in :attr:`extra_gates`; every listed gate
    was grown by ``delta_w`` during this iteration.
    """

    iteration: int
    gate: str
    sensitivity: float
    objective_before: float
    objective_after: float
    total_size: float
    stats: IterationStats = field(default_factory=IterationStats)
    extra_gates: Tuple[str, ...] = ()

    @property
    def all_gates(self) -> Tuple[str, ...]:
        """Every gate sized during this iteration, best first."""
        return (self.gate,) + self.extra_gates


@dataclass
class Selection:
    """Outcome of one inner-loop search (one ``_select_gate`` call).

    ``moves`` holds ``(gate, sensitivity)`` pairs, best first — empty
    when no candidate improves the objective.  ``objective_after`` is
    exact for a single move (the winner's perturbed sink distribution
    is in hand); for multi-gate iterations it is the first-order
    estimate ``objective_before - sum(S_i * dw)`` and the next
    iteration's SSTA re-anchors the trajectory.
    """

    moves: List[Tuple[Gate, float]]
    objective_before: float
    objective_after: float
    stats: IterationStats

    @property
    def best_gate(self) -> Optional[Gate]:
        """The most sensitive gate, or None when nothing improves."""
        return self.moves[0][0] if self.moves else None

    @property
    def best_sensitivity(self) -> float:
        """Sensitivity of the best move (0 when there is none)."""
        return self.moves[0][1] if self.moves else 0.0


@dataclass
class SizingResult:
    """Complete record of one optimization run.

    Enough is stored to replay the trajectory: the initial widths plus
    the ordered list of sized gates reconstruct the circuit at any
    intermediate iteration (used by the Figure 10 area-delay curves).
    """

    optimizer: str
    circuit_name: str
    objective_name: str
    delta_w: float
    initial_objective: float
    final_objective: float
    initial_size: float
    final_size: float
    initial_widths: Dict[str, float]
    steps: List[SizingStep]
    stop_reason: str
    total_time_s: float

    @property
    def n_iterations(self) -> int:
        """Number of accepted sizing moves."""
        return len(self.steps)

    @property
    def size_increase_percent(self) -> float:
        """Table 1 column 3: % growth of total gate size."""
        return 100.0 * (self.final_size - self.initial_size) / self.initial_size

    @property
    def improvement_percent(self) -> float:
        """Objective improvement relative to the unoptimized circuit."""
        if self.initial_objective == 0.0:
            return 0.0
        return 100.0 * (self.initial_objective - self.final_objective) / self.initial_objective

    @property
    def cache_hits(self) -> int:
        """Kernel requests served from the convolution-result cache
        across the whole run."""
        return sum(s.stats.cache_hits for s in self.steps)

    @property
    def cache_hit_rate(self) -> float:
        """cache hits over all kernel requests across the run (0.0 for
        cache-off runs) — the aggregate the CLI report, the benchmark
        record, and the dead-cache tests all consume."""
        hits = self.cache_hits
        requests = hits + sum(
            s.stats.convolutions + s.stats.max_ops for s in self.steps
        )
        if requests == 0:
            return 0.0
        return hits / requests

    @property
    def mean_iteration_time_s(self) -> float:
        """Average wall-clock per iteration (Table 2 columns 2-3)."""
        if not self.steps:
            return 0.0
        return sum(s.stats.wall_time_s for s in self.steps) / len(self.steps)

    def iteration_time_range(self) -> Tuple[float, float]:
        """(min, max) wall-clock per iteration (Table 2 column 5)."""
        if not self.steps:
            return (0.0, 0.0)
        times = [s.stats.wall_time_s for s in self.steps]
        return (min(times), max(times))

    def area_delay_curve(self) -> Tuple[List[float], List[float]]:
        """(total size, objective) after every iteration, starting from
        the unoptimized circuit — the Figure 10 series."""
        sizes = [self.initial_size] + [s.total_size for s in self.steps]
        objectives = [self.initial_objective] + [s.objective_after for s in self.steps]
        return sizes, objectives

    def widths_at_iteration(self, iteration: int) -> Dict[str, float]:
        """Gate widths after ``iteration`` iterations (0 = unoptimized)."""
        if not 0 <= iteration <= len(self.steps):
            raise OptimizationError(
                f"iteration {iteration} outside [0, {len(self.steps)}]"
            )
        widths = dict(self.initial_widths)
        for step in self.steps[:iteration]:
            for name in step.all_gates:
                widths[name] = widths[name] + self.delta_w
        return widths


class SizerBase(ABC):
    """Coordinate-descent gate sizer (Figure 6 outer loop).

    Subclasses implement :meth:`_select_gate`, returning the chosen
    gate, its sensitivity, and the iteration's work statistics; the
    base class applies the move, records the trajectory, and stops on
    convergence (``Max_S <= 0``), the iteration budget, or when every
    gate has hit the width cap.
    """

    name: str = "sizer"

    def __init__(
        self,
        circuit: Circuit,
        *,
        library: Optional[CellLibrary] = None,
        config: AnalysisConfig = DEFAULT_CONFIG,
        objective: Optional[Objective] = None,
        limits: Optional[SizingLimits] = None,
        max_iterations: int = 100,
        min_sensitivity: float = 0.0,
    ) -> None:
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be >= 1")
        self.circuit = circuit
        self.library = library if library is not None else default_library()
        self.config = config
        self.objective = objective if objective is not None else default_objective()
        self.limits = limits if limits is not None else SizingLimits()
        self.max_iterations = max_iterations
        self.min_sensitivity = min_sensitivity
        self.graph = TimingGraph(circuit)
        self.model = DelayModel(circuit, self.library, config)

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------
    @abstractmethod
    def _select_gate(self) -> Selection:
        """One inner-loop search.

        Returns a :class:`Selection`; empty ``moves`` means no candidate
        improves the objective (``Max_S <= min_sensitivity``), which
        stops the run.
        """

    def _after_apply(self, gates: List[Gate]) -> None:
        """Hook invoked after an iteration's moves are committed (the
        gates already carry their new widths).  Default: no-op;
        subclasses use it to keep incremental state current."""

    def _candidates(self) -> List[Gate]:
        """Gates that may still be sized up within the width limits."""
        dw = self.config.delta_w
        return [
            g
            for g in self.circuit.topo_gates()
            if self.limits.can_upsize(g.width, dw)
        ]

    # ------------------------------------------------------------------
    # Outer loop
    # ------------------------------------------------------------------
    def run(self) -> SizingResult:
        """Run the coordinate descent to convergence or budget."""
        dw = self.config.delta_w
        initial_widths = self.circuit.widths()
        initial_size = total_gate_size(self.circuit)
        t0 = time.perf_counter()
        steps: List[SizingStep] = []
        initial_objective: Optional[float] = None
        final_objective: Optional[float] = None
        stop_reason = "max_iterations"
        multi_move_used = False
        for iteration in range(self.max_iterations):
            if not self._candidates():
                stop_reason = "width_limits"
                break
            t_iter = time.perf_counter()
            selection = self._select_gate()
            selection.stats.wall_time_s = time.perf_counter() - t_iter
            if initial_objective is None:
                initial_objective = selection.objective_before
            if (
                selection.best_gate is None
                or selection.best_sensitivity <= self.min_sensitivity
            ):
                stop_reason = "converged"
                final_objective = selection.objective_before
                break
            for gate, _s in selection.moves:
                gate.width += dw
            self._after_apply([gate for gate, _s in selection.moves])
            if len(selection.moves) > 1:
                multi_move_used = True
            steps.append(
                SizingStep(
                    iteration=iteration,
                    gate=selection.moves[0][0].name,
                    sensitivity=selection.best_sensitivity,
                    objective_before=selection.objective_before,
                    objective_after=selection.objective_after,
                    total_size=total_gate_size(self.circuit),
                    stats=selection.stats,
                    extra_gates=tuple(g.name for g, _s in selection.moves[1:]),
                )
            )
            final_objective = selection.objective_after
        if initial_objective is None:
            initial_objective = self._evaluate_objective()
        if final_objective is None or multi_move_used:
            # Multi-gate iterations carry first-order estimates; anchor
            # the reported final objective with one exact SSTA.
            final_objective = self._evaluate_objective()
        return SizingResult(
            optimizer=self.name,
            circuit_name=self.circuit.name,
            objective_name=self.objective.name,
            delta_w=dw,
            initial_objective=initial_objective,
            final_objective=final_objective,
            initial_size=initial_size,
            final_size=total_gate_size(self.circuit),
            initial_widths=initial_widths,
            steps=steps,
            stop_reason=stop_reason,
            total_time_s=time.perf_counter() - t0,
        )

    def _evaluate_objective(self) -> float:
        """Objective of the current circuit (used when the loop exits
        before any selection established it)."""
        from ..timing.ssta import run_ssta

        return self.objective.evaluate(run_ssta(self.graph, self.model).sink_pdf)
