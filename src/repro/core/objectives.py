"""Optimization objectives over the circuit-delay distribution.

In a statistical paradigm the circuit delay is a random variable, so an
optimizer needs a scalar functional of its distribution (Section 2).
The paper uses the **p-percentile point** ``T(p)`` with ``p = 0.99``
but stresses that, because full discretized PDFs are propagated, "the
proposed framework can support a wide range of cost functions".  This
module provides that family.

Pruning safety
--------------
The pruning algorithm bounds the *horizontal CDF shift* at the sink by
``delta_mx`` (Theorem 4).  An objective may rely on that bound only if
it is 1-Lipschitz with respect to horizontal CDF shifts, i.e.

    |J(A) - J(A')| <= max_p |T(A, p) - T(A', p)|.

Percentile points satisfy this trivially; the mean does too (it is the
integral of ``T(A, p)`` over p).  A variance-penalized objective does
not, so it advertises ``shift_bounded = False`` and the pruned sizer
refuses it (the brute-force sizer accepts any objective).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..config import DEFAULT_PERCENTILE
from ..dist.pdf import DiscretePDF
from ..errors import OptimizationError

__all__ = [
    "Objective",
    "PercentileObjective",
    "MeanObjective",
    "MeanPlusSigmaObjective",
    "default_objective",
]


class Objective(ABC):
    """A scalar cost functional of the circuit-delay distribution.

    Lower is better (the sizers minimize); sensitivities are measured
    as the *decrease* of the objective per unit width.
    """

    #: True when |J(A) - J(A')| is bounded by the maximum horizontal
    #: CDF gap, making the Theorem-4 pruning bound valid.
    shift_bounded: bool = True

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable objective name for reports."""

    @abstractmethod
    def evaluate(self, pdf: DiscretePDF) -> float:
        """Objective value (ps) of a circuit-delay distribution."""

    def improvement(self, before: DiscretePDF, after: DiscretePDF) -> float:
        """``J(before) - J(after)``: positive when ``after`` is better."""
        return self.evaluate(before) - self.evaluate(after)


class PercentileObjective(Objective):
    """The paper's objective: the p-percentile delay point ``T(p)``.

    With ``p = 0.99`` (the default) this is the delay met by 99% of
    fabricated dies.
    """

    shift_bounded = True

    def __init__(self, p: float = DEFAULT_PERCENTILE) -> None:
        if not 0.0 < p < 1.0:
            raise OptimizationError(f"percentile level must be in (0, 1), got {p}")
        self.p = p

    @property
    def name(self) -> str:
        return f"{100.0 * self.p:g}-percentile delay"

    def evaluate(self, pdf: DiscretePDF) -> float:
        return pdf.percentile(self.p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PercentileObjective(p={self.p})"


class MeanObjective(Objective):
    """Expected circuit delay — also pruning-safe (the mean is the
    integral of the inverse CDF)."""

    shift_bounded = True

    @property
    def name(self) -> str:
        return "mean delay"

    def evaluate(self, pdf: DiscretePDF) -> float:
        return pdf.mean()


class MeanPlusSigmaObjective(Objective):
    """``E[D] + k * std(D)`` — a common robust-design metric.

    *Not* pruning-safe: a sizing move can reshape the distribution so
    that the sigma term changes more than any horizontal shift.  Usable
    with the brute-force sizer only.
    """

    shift_bounded = False

    def __init__(self, k: float = 3.0) -> None:
        if k < 0.0:
            raise OptimizationError(f"k must be non-negative, got {k}")
        self.k = k

    @property
    def name(self) -> str:
        return f"mean + {self.k:g} sigma delay"

    def evaluate(self, pdf: DiscretePDF) -> float:
        return pdf.mean() + self.k * pdf.std()


def default_objective() -> PercentileObjective:
    """The paper's experimental objective (99-percentile delay)."""
    return PercentileObjective(DEFAULT_PERCENTILE)
