"""Exact gate-sizing sensitivities (the brute-force primitives).

The statistical sensitivity of gate x is (Section 3.3)

    Sx = delta_nf(p) / dw,

the decrease of the objective at the sink per unit of added width,
measured by actually perturbing the gate and re-timing.  The
brute-force computation re-runs a *full* SSTA per candidate — the
O(N*E)-per-iteration cost that motivates the pruning algorithm — and is
kept here both as the baseline for Table 2 and as the oracle the pruned
sizer is verified against (they must agree exactly).

Deterministic sensitivity (used by the baseline optimizer of Section 4)
is the same measurement on the deterministic STA circuit delay.
"""

from __future__ import annotations

from typing import Optional

from ..dist.ops import OpCounter
from ..dist.pdf import DiscretePDF
from ..errors import OptimizationError
from ..netlist.circuit import Gate
from ..timing.delay_model import DelayModel
from ..timing.graph import TimingGraph
from ..timing.ssta import run_ssta
from ..timing.sta import run_sta
from .objectives import Objective

__all__ = [
    "statistical_sensitivity",
    "perturbed_sink_pdf",
    "deterministic_sensitivity",
]


def perturbed_sink_pdf(
    graph: TimingGraph,
    model: DelayModel,
    gate: Gate,
    dw: float,
    *,
    counter: Optional[OpCounter] = None,
) -> DiscretePDF:
    """Circuit-delay distribution with ``gate`` temporarily up-sized by
    ``dw`` — one full SSTA run; the gate's width is restored before
    returning."""
    if dw <= 0.0:
        raise OptimizationError(f"dw must be positive, got {dw}")
    original = gate.width
    gate.width = original + dw
    try:
        result = run_ssta(graph, model, counter=counter)
    finally:
        gate.width = original
    return result.sink_pdf


def statistical_sensitivity(
    graph: TimingGraph,
    model: DelayModel,
    gate: Gate,
    dw: float,
    objective: Objective,
    base_objective_value: float,
    *,
    counter: Optional[OpCounter] = None,
) -> float:
    """Exact ``Sx``: objective decrease per unit width for up-sizing
    ``gate`` by ``dw`` (may be negative when the added input load hurts
    more than the added drive helps)."""
    sink = perturbed_sink_pdf(graph, model, gate, dw, counter=counter)
    return (base_objective_value - objective.evaluate(sink)) / dw


def deterministic_sensitivity(
    graph: TimingGraph,
    model: DelayModel,
    gate: Gate,
    dw: float,
    base_circuit_delay: float,
) -> float:
    """Deterministic analogue: decrease of the STA longest-path delay
    per unit width."""
    if dw <= 0.0:
        raise OptimizationError(f"dw must be positive, got {dw}")
    original = gate.width
    gate.width = original + dw
    try:
        delay = run_sta(graph, model).circuit_delay
    finally:
        gate.width = original
    return (base_circuit_delay - delay) / dw
