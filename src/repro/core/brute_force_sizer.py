"""Brute-force statistical sizer (Section 3.1).

The straightforward statistical coordinate descent: because the circuit
delay PDF combines *all* path delays, every gate in the circuit is a
candidate, and each candidate's exact sensitivity requires propagating
its perturbation to the sink — i.e. one full SSTA run per gate per
iteration, O(N*E) statistical operations.  This optimizer is the
accuracy oracle (the pruned sizer must match its selections exactly)
and the runtime baseline of Table 2.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..dist.ops import OpCounter
from ..netlist.circuit import Gate
from ..timing.ssta import run_ssta
from .sensitivity import statistical_sensitivity
from .sizer_base import IterationStats, Selection, SizerBase

__all__ = ["BruteForceStatisticalSizer"]


class BruteForceStatisticalSizer(SizerBase):
    """Exact statistical coordinate descent by exhaustive SSTA reruns."""

    name = "brute-force-statistical"

    def _select_gate(self) -> Selection:
        dw = self.config.delta_w
        counter = OpCounter()
        base = run_ssta(self.graph, self.model, counter=counter)
        base_obj = self.objective.evaluate(base.sink_pdf)
        candidates = self._candidates()
        stats = IterationStats(candidates=len(candidates))
        best_gate: Optional[Gate] = None
        best_s = 0.0
        for gate in candidates:
            s = statistical_sensitivity(
                self.graph, self.model, gate, dw, self.objective, base_obj,
                counter=counter,
            )
            if s > best_s:
                best_s = s
                best_gate = gate
        stats.convolutions = counter.convolutions
        stats.max_ops = counter.max_ops
        stats.cache_hits = counter.cache_hits
        stats.finished_fronts = len(candidates)
        if best_gate is None:
            return Selection([], base_obj, base_obj, stats)
        return Selection(
            [(best_gate, best_s)], base_obj, base_obj - best_s * dw, stats
        )
