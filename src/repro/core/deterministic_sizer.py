"""Deterministic coordinate-descent sizer (the paper's baseline).

Section 4: "The deterministic optimization that we use for comparison
is similar to a coordinate descent algorithm.  Sensitivities are
computed for all the gates on the critical path and the gate with the
highest sensitivity is sized up.  These sensitivities are computed as
the change in the circuit delay due to a change in the gate size."

Because the search only ever looks at the current critical path, the
optimizer balances path delays into the "wall" of Figure 1 — the
behaviour the statistical optimizer is designed to avoid.  Note the
*objective recorded here is the deterministic STA delay*; Table 1
re-evaluates the resulting circuits statistically (the experiment
harness replays the trajectory under SSTA).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..netlist.circuit import Gate
from ..timing.sta import run_sta
from .sensitivity import deterministic_sensitivity
from .sizer_base import IterationStats, Selection, SizerBase

__all__ = ["DeterministicSizer"]


class DeterministicSizer(SizerBase):
    """Critical-path coordinate descent on the nominal STA delay.

    ``slack_margin`` widens the candidate set to gates within that many
    picoseconds of critical; the paper's baseline uses the strict
    critical path (margin 0), which is the default.
    """

    name = "deterministic"

    def __init__(self, circuit, *, slack_margin: float = 0.0, **kwargs) -> None:
        super().__init__(circuit, **kwargs)
        self.slack_margin = slack_margin

    def _select_gate(self) -> Selection:
        dw = self.config.delta_w
        sta = run_sta(self.graph, self.model)
        base_delay = sta.circuit_delay
        if self.slack_margin > 0.0:
            candidates: List[Gate] = sta.critical_gates_within(self.slack_margin)
        else:
            candidates = sta.critical_path_gates
        sizable = [g for g in candidates if self.limits.can_upsize(g.width, dw)]
        stats = IterationStats(candidates=len(sizable))
        best_gate: Optional[Gate] = None
        best_s = 0.0
        for gate in sizable:
            s = deterministic_sensitivity(self.graph, self.model, gate, dw, base_delay)
            if s > best_s:
                best_s = s
                best_gate = gate
        if best_gate is None:
            return Selection([], base_delay, base_delay, stats)
        return Selection(
            [(best_gate, best_s)], base_delay, base_delay - best_s * dw, stats
        )
