"""Fast heuristic gate selection (the paper's stated future work).

The conclusions of the paper: "Future work includes development of
heuristics for fast and approximate identification of the statistically
most sensitive gate in the circuit", motivated by the observation that
when many gates have *similar* sensitivities, pruning struggles — and
exactly then the choice between near-tied gates barely matters.

:class:`HeuristicStatisticalSizer` implements the natural such
heuristic on top of the perturbation-front machinery:

1. ``Initialize`` every candidate's front (cheap: perturbation is only
   propagated to the candidate's own level) and rank candidates by the
   initial bound ``Smx`` — an optimistic estimate of their sensitivity;
2. propagate only the top ``beam_width`` fronts to the sink and pick
   the best *exact* sensitivity among them.

With ``beam_width = len(candidates)`` this degenerates to an unpruned
exact search; with small beams it trades a provably bounded amount of
optimality for a large constant-factor speedup (the selected gate's
sensitivity is at least the best finished sensitivity, and no pruned
gate can beat the *bound* of the worst beam member it lost to).  The
ablation benchmark quantifies the trade on the paper suite.
"""

from __future__ import annotations

from typing import List, Tuple

from ..dist.ops import OpCounter
from ..errors import OptimizationError
from ..timing.ssta import run_ssta
from .pruned_sizer import PrunedStatisticalSizer
from .sizer_base import IterationStats, Selection

__all__ = ["HeuristicStatisticalSizer"]


class HeuristicStatisticalSizer(PrunedStatisticalSizer):
    """Approximate statistical sizing: beam search over initial bounds.

    Parameters beyond :class:`PrunedStatisticalSizer`:

    beam_width:
        How many of the highest-``Smx`` candidates are propagated to
        the sink per iteration.  1 is the greediest (trust the bound
        ranking outright); 8-16 recovers the exact choice almost
        always at a fraction of the pruned search's cost.
    """

    name = "heuristic-statistical"

    def __init__(self, circuit, *, beam_width: int = 8, **kwargs) -> None:
        super().__init__(circuit, **kwargs)
        if beam_width < 1:
            raise OptimizationError(f"beam_width must be >= 1, got {beam_width}")
        self.beam_width = beam_width

    def _select_gate(self) -> Selection:
        dw = self.config.delta_w
        counter = OpCounter()
        base = run_ssta(self.graph, self.model, counter=counter)
        base_obj = self.objective.evaluate(base.sink_pdf)
        candidates = self._candidates()
        stats = IterationStats(candidates=len(candidates))

        fronts = self._build_fronts(base, candidates, dw, counter)
        # Rank by the post-Initialize bound — recorded at construction,
        # so a front resumed from a previous iteration (cache enabled)
        # ranks exactly as the freshly built front would, keeping the
        # beam membership (and hence the selection) cache-invariant.
        ranked = sorted(fronts, key=lambda f: -f.initial_smx)
        beam = ranked[: self.beam_width]
        stats.pruned = len(ranked) - len(beam)

        best_front = None
        best_s = 0.0
        for front in beam:
            s = front.run_to_sink()
            stats.finished_fronts += 1
            if s > best_s:
                best_s = s
                best_front = front

        baseline = self._nodes_baseline
        stats.nodes_computed = sum(
            f.nodes_computed - baseline.get(id(f), 0) for f in fronts
        )
        stats.convolutions = counter.convolutions
        stats.max_ops = counter.max_ops
        stats.cache_hits = counter.cache_hits
        if best_front is None:
            return Selection([], base_obj, base_obj, stats)
        return Selection(
            [(best_front.gate, best_s)], base_obj, base_obj - best_s * dw, stats
        )
