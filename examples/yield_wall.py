#!/usr/bin/env python3
"""The wall of criticality: why deterministic optimization backfires.

Reproduces the Figure 1 narrative end to end on one benchmark:

* size a circuit with the deterministic critical-path optimizer and,
  at the same added area, with the statistical optimizer;
* show the deterministic solution balances path delays into a "wall"
  (many near-critical paths) while the statistical one keeps the path
  histogram unbalanced;
* show the wall costs real parametric yield: at the deterministic
  solution's 99%-delay target, the statistical solution yields more
  dies (Monte Carlo).

Run:  python examples/yield_wall.py [circuit] [iterations]
"""

import sys

import numpy as np

import repro
from repro.config import AnalysisConfig

CFG = AnalysisConfig(dt=4.0, delta_w=1.0)


def ascii_histogram(hist, *, width=50, rows=12) -> str:
    """Render a path-delay histogram as ASCII (Figure 1a, textually)."""
    counts = hist.counts
    delays = hist.delays
    mask = counts > 0
    lo = delays[mask][0]
    hi = delays[mask][-1]
    edges = np.linspace(lo, hi + 1e-9, rows + 1)
    lines = []
    for i in range(rows):
        sel = (delays >= edges[i]) & (delays < edges[i + 1])
        total = counts[sel].sum()
        frac = total / max(hist.total_paths, 1.0)
        bar = "#" * int(round(frac * width))
        lines.append(f"  {edges[i]:8.0f}-{edges[i + 1]:8.0f} ps |{bar}")
    return "\n".join(lines)


def analyze(tag: str, circuit) -> dict:
    graph = repro.TimingGraph(circuit)
    model = repro.DelayModel(circuit, config=CFG)
    hist = repro.path_delay_histogram(graph, model, bin_width=8.0)
    ssta = repro.run_ssta(graph, model)
    mc = repro.run_monte_carlo(graph, model, n_samples=6000, seed=7)
    print(f"\n=== {tag} ===")
    print(ascii_histogram(hist))
    wall = repro.wall_metric(hist, margin_fraction=0.10)
    print(f"near-critical paths (within 10% of Dmax): {100 * wall:.1f}%")
    print(f"99% delay (bound): {ssta.percentile(0.99):.1f} ps")
    return {"wall": wall, "p99": ssta.percentile(0.99), "mc": mc}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c432"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    scale = 1.0 if name in ("c432", "c17") else 0.4

    det_circuit = repro.load(name, scale=scale)
    det = repro.DeterministicSizer(
        det_circuit, config=CFG, max_iterations=iterations
    ).run()
    print(f"deterministic optimizer: {det.n_iterations} moves, "
          f"+{det.size_increase_percent:.1f}% gate size")

    stat_circuit = repro.load(name, scale=scale)
    stat = repro.PrunedStatisticalSizer(
        stat_circuit, config=CFG, max_iterations=max(1, det.n_iterations)
    ).run()
    print(f"statistical optimizer:   {stat.n_iterations} moves, "
          f"+{stat.size_increase_percent:.1f}% gate size")

    det_res = analyze("deterministic solution (the wall)", det_circuit)
    stat_res = analyze("statistical solution", stat_circuit)

    # Yield at the deterministic solution's own 99% target.
    target = det_res["p99"]
    det_yield = float(np.mean(det_res["mc"].samples <= target))
    stat_yield = float(np.mean(stat_res["mc"].samples <= target))
    print(f"\nyield at a {target:.0f} ps target "
          f"(the deterministic solution's 99% point):")
    print(f"  deterministic solution: {100 * det_yield:5.1f}%")
    print(f"  statistical solution:   {100 * stat_yield:5.1f}%")
    print(f"\n99% delay: deterministic {det_res['p99']:.1f} ps vs "
          f"statistical {stat_res['p99']:.1f} ps "
          f"({100 * (det_res['p99'] - stat_res['p99']) / det_res['p99']:.2f}% better)")


if __name__ == "__main__":
    main()
