#!/usr/bin/env python3
"""Design closure at scale: the extension toolkit in one flow.

A realistic sign-off-style session that goes beyond the paper's core
experiments and exercises every extension this library adds:

1. size a benchmark with the *multi-gate* pruned optimizer (the paper's
   "size multiple gates in the same iteration" variant) — fewer SSTA
   refreshes to reach the same area;
2. cross-check the approximate *heuristic* optimizer (the paper's
   stated future work) against the exact one — quality vs speed;
3. track timing through the run with *incremental SSTA* instead of
   full re-analysis — bitwise-identical arrivals, fraction of the work;
4. stress the signed-off design under *spatially correlated* variation
   (quad-tree model), which the paper's independence assumption
   ignores, and report the yield impact.

Run:  python examples/design_closure.py [circuit] [scale]
"""

import sys
import time

import numpy as np

import repro
from repro.config import AnalysisConfig
from repro.timing.correlation import QuadTreeCorrelation, run_monte_carlo_correlated
from repro.timing.incremental import update_ssta_after_resize

CFG = AnalysisConfig(dt=4.0, delta_w=1.0)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c880"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    # ------------------------------------------------------------------
    # 1. Multi-gate statistical sizing
    # ------------------------------------------------------------------
    circuit = repro.load(name, scale=scale)
    t0 = time.perf_counter()
    result = repro.PrunedStatisticalSizer(
        circuit, config=CFG, max_iterations=5, gates_per_iteration=3
    ).run()
    moves = sum(len(s.all_gates) for s in result.steps)
    print(f"multi-gate sizing: {moves} gate moves in "
          f"{result.n_iterations} iterations ({time.perf_counter() - t0:.1f}s)")
    print(f"  99% delay {result.initial_objective:.1f} -> "
          f"{result.final_objective:.1f} ps "
          f"(+{result.size_increase_percent:.1f}% area)")

    # ------------------------------------------------------------------
    # 2. Heuristic (beam) optimizer vs exact pruned optimizer
    # ------------------------------------------------------------------
    print("\nheuristic-vs-exact selection (paper future work):")
    for beam in (1, 4, 16):
        c = repro.load(name, scale=scale)
        t0 = time.perf_counter()
        r = repro.HeuristicStatisticalSizer(
            c, config=CFG, beam_width=beam, max_iterations=5
        ).run()
        print(f"  beam {beam:3d}: final 99% {r.final_objective:8.1f} ps "
              f"in {time.perf_counter() - t0:5.1f}s")
    c = repro.load(name, scale=scale)
    t0 = time.perf_counter()
    r = repro.PrunedStatisticalSizer(c, config=CFG, max_iterations=5).run()
    print(f"  exact   : final 99% {r.final_objective:8.1f} ps "
          f"in {time.perf_counter() - t0:5.1f}s")

    # ------------------------------------------------------------------
    # 3. Incremental SSTA during an ECO-style width sweep
    # ------------------------------------------------------------------
    print("\nincremental SSTA (engineering-change-order loop):")
    circuit = repro.load(name, scale=scale)
    graph = repro.TimingGraph(circuit)
    model = repro.DelayModel(circuit, config=CFG)
    base = repro.run_ssta(graph, model)
    gates = circuit.topo_gates()
    eco_gates = [gates[len(gates) // 3], gates[len(gates) // 2], gates[-3]]
    t0 = time.perf_counter()
    recomputed = 0
    for gate in eco_gates:
        gate.width += 1.0
        recomputed += update_ssta_after_resize(base, model, [gate])
    t_inc = time.perf_counter() - t0
    t0 = time.perf_counter()
    full = repro.run_ssta(graph, model)
    t_full = time.perf_counter() - t0
    same = all(
        a.offset == b.offset and np.array_equal(a.masses, b.masses)
        for a, b in zip(base.arrivals, full.arrivals)
    )
    print(f"  3 ECOs re-timed incrementally: {recomputed} node updates, "
          f"{t_inc:.2f}s vs {t_full:.2f}s per full pass "
          f"(bitwise identical: {same})")

    # ------------------------------------------------------------------
    # 4. Correlation stress: what the independence assumption hides
    # ------------------------------------------------------------------
    print("\nspatial-correlation stress (quad-tree model):")
    sink = full.sink_pdf
    target = sink.percentile(0.99)
    for rho in (0.0, 0.3, 0.6, 0.9):
        mc = run_monte_carlo_correlated(
            graph, model, QuadTreeCorrelation(levels=3, rho=rho),
            n_samples=4000, seed=11,
        )
        y = repro.timing_yield(mc, target)
        print(f"  rho={rho:.1f}: sigma {mc.std():6.1f} ps, 99% "
              f"{mc.percentile(0.99):8.1f} ps, yield at bound target "
              f"{100 * y:5.1f}%")
    print("\n(correlation inflates the circuit-delay sigma and pushes the "
          "true 99% past the independence-based bound — the quantitative "
          "reason the paper lists correlation modeling as future work)")


if __name__ == "__main__":
    main()
