#!/usr/bin/env python3
"""Pruning in action: watch the perturbation bounds kill candidates.

The paper's Table 2 is about one inner loop: find the most sensitive
gate without propagating every candidate to the sink.  This example
instruments that loop on one benchmark and prints, per candidate, how
far its perturbation front actually traveled before the bound pruned
it — then compares wall-clock and statistical-operation counts against
the brute-force loop, verifying the selections agree exactly.

Run:  python examples/pruning_speedup.py [circuit] [scale]
"""

import heapq
import sys
import time

import repro
from repro.config import AnalysisConfig
from repro.core.perturbation import PerturbationFront
from repro.core.sensitivity import statistical_sensitivity
from repro.dist.ops import OpCounter

CFG = AnalysisConfig(dt=4.0, delta_w=1.0)


def pruned_selection(circuit, graph, model, base, objective):
    """The Figure 6 inner loop, instrumented."""
    counter = OpCounter()
    fronts = {
        g.name: PerturbationFront(graph, model, base, g, CFG.delta_w,
                                  objective, counter=counter)
        for g in circuit.topo_gates()
    }
    heap = [(-f.smx, name) for name, f in fronts.items()]
    heapq.heapify(heap)
    max_s, best, pruned_at = 0.0, None, {}
    while heap:
        _neg, name = heapq.heappop(heap)
        front = fronts[name]
        if front.sensitivity is not None:
            if front.sensitivity > max_s:
                max_s, best = front.sensitivity, name
            continue
        if front.smx < max_s:
            pruned_at[name] = front.curr_level
            continue
        front.propagate_one_level()
        if front.sensitivity is not None:
            if front.sensitivity > max_s:
                max_s, best = front.sensitivity, name
        else:
            heapq.heappush(heap, (-front.smx, name))
    return best, max_s, pruned_at, counter


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c880"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    circuit = repro.load(name, scale=scale)
    graph = repro.TimingGraph(circuit)
    model = repro.DelayModel(circuit, config=CFG)
    objective = repro.default_objective()
    base = repro.run_ssta(graph, model)
    base_obj = objective.evaluate(base.sink_pdf)
    sink_level = graph.max_level
    print(f"{circuit.name}: {circuit.n_gates} gates, "
          f"{sink_level + 1} timing levels\n")

    # --- pruned inner loop -------------------------------------------------
    t0 = time.perf_counter()
    best, max_s, pruned_at, counter = pruned_selection(
        circuit, graph, model, base, objective
    )
    t_pruned = time.perf_counter() - t0
    print(f"pruned search:  best gate {best} (S = {max_s:.4f} ps/width) "
          f"in {t_pruned:.2f}s, {counter.total_ops} statistical ops")
    print(f"candidates pruned before the sink: "
          f"{len(pruned_at)}/{circuit.n_gates}")
    if pruned_at:
        levels = sorted(pruned_at.values())
        print("pruning depth profile (levels traveled before pruning):")
        for lo in range(0, sink_level + 1, max(1, sink_level // 8)):
            hi = lo + max(1, sink_level // 8)
            n = sum(1 for lv in levels if lo <= lv < hi)
            print(f"  levels {lo:3d}-{hi:3d}: {'#' * n} ({n})")

    # --- brute-force inner loop -------------------------------------------
    t0 = time.perf_counter()
    bf_counter = OpCounter()
    best_bf, s_bf = None, 0.0
    for gate in circuit.topo_gates():
        s = statistical_sensitivity(
            graph, model, gate, CFG.delta_w, objective, base_obj,
            counter=bf_counter,
        )
        if s > s_bf:
            s_bf, best_bf = s, gate.name
    t_brute = time.perf_counter() - t0
    print(f"\nbrute force:    best gate {best_bf} (S = {s_bf:.4f}) "
          f"in {t_brute:.2f}s, {bf_counter.total_ops} statistical ops")

    # --- comparison ---------------------------------------------------------
    assert best == best_bf and max_s == s_bf, "pruning must be exact!"
    print(f"\nselections identical (exactness verified)")
    print(f"speedup: {t_brute / t_pruned:.1f}x wall clock, "
          f"{bf_counter.total_ops / max(counter.total_ops, 1):.1f}x fewer ops")


if __name__ == "__main__":
    main()
