#!/usr/bin/env python3
"""Bring your own cells and netlists.

The paper's flow is library- and netlist-agnostic; this example shows
every extension point a downstream user has:

* define a custom cell library (EQ-1 constants per cell);
* build a circuit programmatically AND parse one from `.bench` text;
* swap the delay *distribution family* assumption (the paper: "any
  delay distribution could be used in our framework") by changing the
  analysis config's sigma/truncation;
* optimize under a non-default objective (95th percentile, and the
  mean) and compare the resulting trade-offs.

Run:  python examples/custom_library.py
"""

import repro
from repro.config import AnalysisConfig
from repro.core.objectives import MeanObjective, PercentileObjective
from repro.library import CellLibrary, CellType

# --- 1. A tiny custom library (a fictional 130nm-ish process) --------------
LIB = CellLibrary(name="demo130", wire_cap_per_fanout=0.8,
                  primary_output_cap=5.0)
LIB.add(CellType("INVD1", "NOT", 1, intrinsic_delay=18.0, drive_k=20.0,
                 input_cap=1.6, cell_cap=1.6, area=1.0))
LIB.add(CellType("ND2D1", "NAND", 2, intrinsic_delay=36.0, drive_k=20.0,
                 input_cap=2.1, cell_cap=4.2, area=1.8))
LIB.add(CellType("NR2D1", "NOR", 2, intrinsic_delay=40.0, drive_k=20.0,
                 input_cap=2.7, cell_cap=5.4, area=2.0))
LIB.add(CellType("AN2D1", "AND", 2, intrinsic_delay=52.0, drive_k=20.0,
                 input_cap=2.5, cell_cap=5.0, area=2.2))

BENCH_TEXT = """
# a small carry-select-ish slice in .bench format
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
axb   = NAND(a, b)
nab   = NAND(a, axb)
nbb   = NAND(b, axb)
xo    = NAND(nab, nbb)
sxc   = NAND(xo, cin)
nsc1  = NAND(xo, sxc)
nsc2  = NAND(cin, sxc)
sum   = NAND(nsc1, nsc2)
cout  = NAND(sxc, axb)
"""


def build_programmatic() -> repro.Circuit:
    """Same adder slice, built through the Circuit API instead."""
    c = repro.Circuit("adder_api")
    for net in ("a", "b", "cin"):
        c.add_input(net)
    nand = LIB.get("ND2D1")
    c.add_gate(nand, ["a", "b"], "axb")
    c.add_gate(nand, ["a", "axb"], "nab")
    c.add_gate(nand, ["b", "axb"], "nbb")
    c.add_gate(nand, ["nab", "nbb"], "xo")
    c.add_gate(nand, ["xo", "cin"], "sxc")
    c.add_gate(nand, ["xo", "sxc"], "nsc1")
    c.add_gate(nand, ["cin", "sxc"], "nsc2")
    c.add_gate(nand, ["nsc1", "nsc2"], "sum")
    c.add_gate(nand, ["sxc", "axb"], "cout")
    c.add_output("sum")
    c.add_output("cout")
    return c


def report(tag: str, circuit, config) -> None:
    graph = repro.TimingGraph(circuit)
    model = repro.DelayModel(circuit, LIB, config)
    ssta = repro.run_ssta(graph, model)
    print(f"  {tag:28s} mean {ssta.mean_delay():7.1f} ps   "
          f"sigma {ssta.std_delay():5.1f} ps   "
          f"99% {ssta.percentile(0.99):7.1f} ps")


def main() -> None:
    # --- 2. Two construction paths give the identical circuit --------------
    parsed = repro.parse_bench(BENCH_TEXT, name="adder_bench", library=LIB)
    api = build_programmatic()
    assert parsed.n_gates == api.n_gates == 9
    print(f"parsed {parsed.name}: {parsed.n_gates} gates "
          f"(matches the API-built twin)\n")

    # --- 3. Distribution-family sweep ---------------------------------------
    print("variability model sweep (same netlist, same library):")
    for sigma, trunc in [(0.05, 3.0), (0.10, 3.0), (0.10, 2.0), (0.20, 3.0)]:
        cfg = AnalysisConfig(dt=2.0, sigma_fraction=sigma,
                             truncation_sigma=trunc)
        report(f"sigma={sigma:.0%}, cut at {trunc:g} sigma", parsed, cfg)

    # --- 4. Objective comparison --------------------------------------------
    print("\nsizing the same circuit under different objectives "
          "(8 moves each):")
    for objective in (PercentileObjective(0.99), PercentileObjective(0.95),
                      MeanObjective()):
        circuit = build_programmatic()
        cfg = AnalysisConfig(dt=2.0, delta_w=0.5)
        result = repro.PrunedStatisticalSizer(
            circuit, library=LIB, config=cfg, objective=objective,
            max_iterations=8,
        ).run()
        print(f"  {objective.name:24s} {result.initial_objective:7.1f} -> "
              f"{result.final_objective:7.1f} ps   "
              f"(sized: {', '.join(dict.fromkeys(s.gate for s in result.steps))})")

    print("\nall flows ran on a user-defined library — no built-ins used.")


if __name__ == "__main__":
    main()
