#!/usr/bin/env python3
"""Quickstart: analyze and statistically size an ISCAS'85 benchmark.

This walks the paper's whole story in ~40 lines of API:

1. load a benchmark circuit (synthetic ISCAS-85 equivalent);
2. run deterministic STA and statistical STA (discretized PDFs);
3. validate the SSTA bound against Monte Carlo;
4. run the pruned statistical gate sizer;
5. report the improvement of the 99-percentile circuit delay.

Run:  python examples/quickstart.py
"""

import repro
from repro.config import AnalysisConfig

# A slightly coarse grid keeps this demo under a minute.
CFG = AnalysisConfig(dt=4.0, delta_w=1.0)


def main() -> None:
    # 1. Load the benchmark (scale=1.0 is the paper's node/edge count).
    circuit = repro.load("c432")
    print(f"circuit: {circuit.name} — {circuit.n_gates} gates, "
          f"{circuit.n_nets} nets, depth {circuit.depth()}")

    # 2. Time it, deterministically and statistically.
    graph = repro.TimingGraph(circuit)
    model = repro.DelayModel(circuit, config=CFG)
    sta = repro.run_sta(graph, model)
    ssta = repro.run_ssta(graph, model)
    print(f"nominal (STA) delay:    {sta.circuit_delay:8.1f} ps")
    print(f"SSTA mean / sigma:      {ssta.mean_delay():8.1f} ps / "
          f"{ssta.std_delay():.1f} ps")
    print(f"SSTA 99% bound:         {ssta.percentile(0.99):8.1f} ps")

    # 3. Validate the bound with Monte Carlo (Figure 10's check).
    mc = repro.run_monte_carlo(graph, model, n_samples=4000, seed=1)
    err = abs(ssta.percentile(0.99) - mc.percentile(0.99)) / mc.percentile(0.99)
    print(f"Monte Carlo 99%:        {mc.percentile(0.99):8.1f} ps "
          f"(bound within {100 * err:.2f}%)")

    # 4. Statistical sizing with the paper's pruned optimizer.
    sizer = repro.PrunedStatisticalSizer(circuit, config=CFG, max_iterations=15)
    result = sizer.run()

    # 5. Report.
    print(f"\nafter {result.n_iterations} sizing moves "
          f"(+{result.size_increase_percent:.1f}% total gate size):")
    print(f"99% delay: {result.initial_objective:.1f} -> "
          f"{result.final_objective:.1f} ps "
          f"({result.improvement_percent:.2f}% better)")
    pruned = [s.stats.pruned_fraction for s in result.steps]
    print(f"candidates pruned per iteration: "
          f"{100 * min(pruned):.0f}%..{100 * max(pruned):.0f}%")


if __name__ == "__main__":
    main()
